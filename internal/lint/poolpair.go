package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolPairAnalyzer enforces the zero-allocation codec pipeline's
// ownership rule: every buffer taken from a scratch pool goes back.
// Tracked acquisitions are
//
//   - compress.GetBytes / compress.GetInt64s, paired with PutBytes /
//     PutInt64s, and
//   - any module function named Acquire* that returns a release func()
//     (e.g. ensemble.VarStats.AcquireOriginal), paired with calling or
//     deferring that func.
//
// Within each function the analyzer walks statements in source order
// and, at every exit edge — each return, each explicit panic, and
// falling off the end of the body — reports tracked values that have
// not been released, deferred for release, or returned to the caller
// (returning the buffer transfers ownership). The walk is a linear
// approximation, not a full CFG: a release anywhere earlier in source
// order satisfies later exits. That is deliberately lenient — the
// analyzer exists to catch the early-return and panic-before-Put leaks
// that code review keeps missing, without false-positive noise on
// branchy code.
var PoolPairAnalyzer = &Analyzer{
	Name: "poolpair",
	Doc:  "every pooled Get/Acquire must be released on every exit path",
	Run:  runPoolPair,
}

// poolPairs maps the compress package's pooled getters to the required
// release call.
var poolPairs = map[string]string{
	"GetBytes":  "PutBytes",
	"GetInt64s": "PutInt64s",
	"GetFloats": "PutFloats",
}

func runPoolPair(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					poolPairBody(p, fn.Body)
				}
			case *ast.FuncLit:
				poolPairBody(p, fn.Body)
			}
			return true
		})
	}
}

// tracked is one live pooled value inside a function walk.
type tracked struct {
	pos      token.Pos // acquisition site
	expect   string    // what a fix looks like, for the message
	released bool
	reported bool
}

type poolWalker struct {
	p    *Pass
	live map[types.Object]*tracked
}

func poolPairBody(p *Pass, body *ast.BlockStmt) {
	w := &poolWalker{p: p, live: make(map[types.Object]*tracked)}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // separate frame, checked on its own
		case *ast.DeferStmt:
			w.handleDefer(s)
			return false
		case *ast.AssignStmt:
			w.handleAssign(s)
		case *ast.CallExpr:
			w.handleRelease(s)
		case *ast.ReturnStmt:
			w.handleExit(s.Pos(), s.Results)
		case *ast.ExprStmt:
			if isPanicCall(s) {
				w.handleExit(s.Pos(), nil)
			}
		}
		return true
	})
	if !terminates(body) {
		w.handleExit(body.End(), nil)
	}
}

// terminates reports whether the body's last statement is an exit edge
// already handled during the walk.
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	last := body.List[len(body.List)-1]
	if _, ok := last.(*ast.ReturnStmt); ok {
		return true
	}
	return isPanicCall(last)
}

// handleAssign records acquisitions: x := compress.GetBytes(n) and
// data, release := obj.AcquireOriginal(m). It also recognizes ownership
// transfer: an assignment that weaves a tracked value into a
// longer-lived structure (an index, field, or pointer target on the
// left-hand side) hands the buffer to whoever owns that structure —
// the pattern behind parallel's payloads[i] slots, which a deferred
// sweep releases in bulk.
func (w *poolWalker) handleAssign(s *ast.AssignStmt) {
	if len(w.live) > 0 && hasStructuredTarget(s.Lhs) {
		for obj, t := range w.live {
			for _, rhs := range s.Rhs {
				if usesObject(w.p, rhs, obj) {
					t.released = true
				}
			}
		}
	}
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(w.p, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if put, ok := poolPairs[fn.Name()]; ok && strings.HasSuffix(fn.Pkg().Path(), "internal/compress") {
		if obj := lhsObject(w.p, s.Lhs, 0); obj != nil {
			w.live[obj] = &tracked{pos: s.Pos(), expect: fn.Pkg().Name() + "." + put}
		}
		return
	}
	if strings.HasPrefix(fn.Name(), "Acquire") && isModuleOwn(w.p, fn) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for i := 0; i < sig.Results().Len() && i < len(s.Lhs); i++ {
			if !isReleaseFunc(sig.Results().At(i).Type()) {
				continue
			}
			if obj := lhsObject(w.p, s.Lhs, i); obj != nil {
				w.live[obj] = &tracked{pos: s.Pos(), expect: "the release func returned by " + fn.Name()}
			}
		}
	}
}

// hasStructuredTarget reports whether any assignment target is not a
// plain identifier — i.e. the value lands in an index, field, or
// dereference rather than a local.
func hasStructuredTarget(lhs []ast.Expr) bool {
	for _, e := range lhs {
		if identOf(e) == nil {
			return true
		}
	}
	return false
}

// lhsObject resolves the i'th assignment target to a named object.
func lhsObject(p *Pass, lhs []ast.Expr, i int) types.Object {
	if i >= len(lhs) {
		return nil
	}
	id := identOf(lhs[i])
	if id == nil || id.Name == "_" {
		return nil
	}
	return p.ObjectOf(id)
}

// isReleaseFunc matches func() — no parameters, no results.
func isReleaseFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// handleRelease marks values released by a PutBytes/PutInt64s call or by
// invoking a tracked release func.
func (w *poolWalker) handleRelease(call *ast.CallExpr) {
	if len(w.live) == 0 {
		return
	}
	if id := identOf(call.Fun); id != nil {
		if t, ok := w.live[w.p.ObjectOf(id)]; ok {
			t.released = true // release()
			return
		}
	}
	fn := calleeFunc(w.p, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if !isPutName(fn.Name()) || !strings.HasSuffix(fn.Pkg().Path(), "internal/compress") {
		return
	}
	for obj, t := range w.live {
		for _, arg := range call.Args {
			if usesObject(w.p, arg, obj) {
				t.released = true
			}
		}
	}
}

func isPutName(name string) bool {
	for _, put := range poolPairs {
		if name == put {
			return true
		}
	}
	return false
}

// handleDefer discharges releases scheduled with defer, both direct
// (defer compress.PutBytes(b)) and wrapped (defer func(){ ... }()).
func (w *poolWalker) handleDefer(d *ast.DeferStmt) {
	w.handleRelease(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.handleRelease(call)
			}
			return true
		})
	}
}

// handleExit reports every live, unreleased value at an exit edge.
// Values appearing in the return results are treated as handed to the
// caller.
func (w *poolWalker) handleExit(pos token.Pos, results []ast.Expr) {
	for obj, t := range w.live {
		if t.released || t.reported {
			continue
		}
		escapes := false
		for _, r := range results {
			if usesObject(w.p, r, obj) {
				escapes = true
				break
			}
		}
		if escapes {
			continue
		}
		t.reported = true
		w.p.Reportf(t.pos, "%q acquired here is not released on the exit path at line %d: call %s (or defer it) before returning",
			obj.Name(), w.p.Pkg.Fset.Position(pos).Line, t.expect)
	}
}
