package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckFunc parses and type-checks a single-file package and returns
// a Pass over it plus the named function's body.
func typecheckFunc(t *testing.T, src, fn string) (*Pass, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "df.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("dftest", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &Package{
		Path: "dftest", Module: "dftest", Fset: fset,
		Files: []*ast.File{f}, Types: tpkg, Info: info,
		supp: make(map[suppKey]bool),
	}
	pass := &Pass{Analyzer: &Analyzer{Name: "test"}, Pkg: pkg, Module: "dftest", report: func(Diagnostic) {}}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return pass, fd
		}
	}
	t.Fatalf("no function %q", fn)
	return nil, nil
}

// findCall locates the call to the named function inside a body.
func findCall(t *testing.T, body *ast.BlockStmt, name string) *ast.CallExpr {
	t.Helper()
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && found == nil {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = call
			}
		}
		return found == nil
	})
	if found == nil {
		t.Fatalf("no call to %q", name)
	}
	return found
}

func objOf(t *testing.T, p *Pass, body *ast.BlockStmt, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && obj == nil {
			if o := p.ObjectOf(id); o != nil {
				obj = o
			}
		}
		return obj == nil
	})
	if obj == nil {
		t.Fatalf("no object %q", name)
	}
	return obj
}

const dfSrc = `package dftest

func sink(x int) {}

func branches(c bool) {
	x := 0
	if c {
		x = 1
	}
	sink(x)
}

func loop(n int) {
	x := 0
	for i := 0; i < n; i++ {
		sink(x)
		x = i
	}
}

func killed() {
	x := 1
	x = 2
	sink(x)
}

func unknownParam(x int) {
	sink(x)
}
`

// litValues extracts the integer literal values of a def set; -1 stands
// for an opaque definition.
func litValues(sites []DefSite) map[string]bool {
	vals := make(map[string]bool)
	for _, d := range sites {
		if lit, ok := d.Rhs.(*ast.BasicLit); ok {
			vals[lit.Value] = true
		} else {
			vals["?"] = true
		}
	}
	return vals
}

func TestReachingDefsBranchJoin(t *testing.T) {
	p, fd := typecheckFunc(t, dfSrc, "branches")
	g := FuncCFG(fd.Body)
	rd := ComputeReachingDefs(p, g)
	call := findCall(t, fd.Body, "sink")
	x := objOf(t, p, fd.Body, "x")
	sites, ok := rd.At(x, call.Args[0])
	if !ok {
		t.Fatal("x should have reaching defs at sink(x)")
	}
	vals := litValues(sites)
	if !vals["0"] || !vals["1"] || len(sites) != 2 {
		t.Errorf("want defs {0,1} to reach the join, got %v", vals)
	}
}

func TestReachingDefsLoopCarried(t *testing.T) {
	p, fd := typecheckFunc(t, dfSrc, "loop")
	g := FuncCFG(fd.Body)
	rd := ComputeReachingDefs(p, g)
	call := findCall(t, fd.Body, "sink")
	x := objOf(t, p, fd.Body, "x")
	sites, ok := rd.At(x, call.Args[0])
	if !ok {
		t.Fatal("x should have reaching defs inside the loop")
	}
	vals := litValues(sites)
	// Both the init (x := 0) and the loop-carried x = i reach the use.
	if !vals["0"] || !vals["?"] {
		t.Errorf("want init and loop-carried defs, got %v", vals)
	}
}

func TestReachingDefsKill(t *testing.T) {
	p, fd := typecheckFunc(t, dfSrc, "killed")
	g := FuncCFG(fd.Body)
	rd := ComputeReachingDefs(p, g)
	call := findCall(t, fd.Body, "sink")
	x := objOf(t, p, fd.Body, "x")
	sites, ok := rd.At(x, call.Args[0])
	if !ok {
		t.Fatal("x should have a reaching def")
	}
	if len(sites) != 1 || !litValues(sites)["2"] {
		t.Errorf("x = 2 must kill x := 1; got %v", litValues(sites))
	}
}

func TestReachingDefsUnknownParam(t *testing.T) {
	p, fd := typecheckFunc(t, dfSrc, "unknownParam")
	g := FuncCFG(fd.Body)
	rd := ComputeReachingDefs(p, g)
	call := findCall(t, fd.Body, "sink")
	x := objOf(t, p, fd.Body, "x")
	if _, ok := rd.At(x, call.Args[0]); ok {
		t.Error("a parameter with no assignment must report unknown (ok=false)")
	}
}
