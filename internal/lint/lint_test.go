package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func position(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// loadCorpus loads one testdata package through the real loader.
func loadCorpus(t *testing.T, rel string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(rel)
	if err != nil {
		t.Fatalf("Load(%s): %v", rel, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", rel, len(pkgs))
	}
	return pkgs[0]
}

// TestAnalyzerCorpus drives every analyzer over its own corpus and
// diffs reported diagnostics against the // want expectations, in both
// directions.
func TestAnalyzerCorpus(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadCorpus(t, "testdata/src/"+a.Name)
			diags := Run([]*Package{pkg}, []*Analyzer{a})
			problems, err := CheckExpectations(pkg, diags)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestGoCaptureOldLoopVars drives the pre-1.22 corpus with the module
// version forced back to 1.21, exercising the shared-loop-variable rule,
// then re-runs at the module's real version to pin that go1.22 per-
// iteration semantics silence it.
func TestGoCaptureOldLoopVars(t *testing.T) {
	pkg := loadCorpus(t, "testdata/src/gocaptureold")
	pkg.GoVersion = "1.21"
	diags := Run([]*Package{pkg}, []*Analyzer{GoCaptureAnalyzer})
	problems, err := CheckExpectations(pkg, diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}

	modern := loadCorpus(t, "testdata/src/gocaptureold")
	if modern.GoVersion != "1.22" {
		t.Fatalf("module go directive = %q, want 1.22 (update this test with go.mod)", modern.GoVersion)
	}
	if diags := Run([]*Package{modern}, []*Analyzer{GoCaptureAnalyzer}); len(diags) != 0 {
		t.Errorf("loop-variable rule fired under go1.22 semantics: %v", diags)
	}
}

// TestLoopVarPerIteration pins the version gate's parsing.
func TestLoopVarPerIteration(t *testing.T) {
	cases := []struct {
		ver string
		per bool
	}{
		{"1.22", true}, {"1.22.4", true}, {"1.23", true}, {"2.0", true},
		{"1.21", false}, {"1.21.9", false}, {"1.9", false},
		{"", true}, {"weird", true}, // unknown: assume modern, stay silent
	}
	for _, c := range cases {
		if got := loopVarPerIteration(c.ver); got != c.per {
			t.Errorf("loopVarPerIteration(%q) = %v, want %v", c.ver, got, c.per)
		}
	}
	if v := goVersionFrom("module m\n\ngo 1.22\n"); v != "1.22" {
		t.Errorf("goVersionFrom = %q, want 1.22", v)
	}
}

// TestCorpusMakesClimatelintFail pins the acceptance contract that the
// full analyzer set reports at least one finding on every corpus — the
// binary must exit nonzero on each seeded testdata package.
func TestCorpusMakesClimatelintFail(t *testing.T) {
	for _, a := range Analyzers() {
		pkg := loadCorpus(t, "testdata/src/"+a.Name)
		if diags := Run([]*Package{pkg}, Analyzers()); len(diags) == 0 {
			t.Errorf("corpus %s produced no diagnostics from the full analyzer set", a.Name)
		}
	}
}

// TestRepoIsLintClean is the golden gate: climatelint over the whole
// module must report nothing. Any new finding is either a real bug (fix
// it) or an intended sentinel (annotate it with //lint:<analyzer> and a
// justification).
func TestRepoIsLintClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join(l.ModuleDir, "..."))
	if err != nil {
		t.Fatalf("Load module: %v", err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}

// TestLoadSyntaxError: a package that does not parse must surface a
// LoadError naming the file, not a silent success.
func TestLoadSyntaxError(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load("testdata/broken/syntax")
	if err == nil {
		t.Fatal("Load succeeded on a package with a syntax error")
	}
	le, ok := AsLoadError(err)
	if !ok {
		t.Fatalf("got %T (%v), want *LoadError", err, err)
	}
	if !strings.Contains(le.Error(), "bad.go") {
		t.Errorf("LoadError does not name the broken file: %v", le)
	}
}

// TestLoadTypeError: parseable but ill-typed packages must fail too.
func TestLoadTypeError(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load("testdata/broken/types")
	if err == nil {
		t.Fatal("Load succeeded on a package with a type error")
	}
	le, ok := AsLoadError(err)
	if !ok {
		t.Fatalf("got %T (%v), want *LoadError", err, err)
	}
	if !strings.Contains(le.Error(), "undefined") && !strings.Contains(le.Error(), "cannot use") {
		t.Errorf("LoadError does not carry the type-checker message: %v", le)
	}
}

// TestLoadErrorIsCached: a second request for a broken package must
// return the same failure, not a half-initialized package.
func TestLoadErrorIsCached(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err1 := l.Load("testdata/broken/types")
	_, err2 := l.Load("testdata/broken/types")
	if err1 == nil || err2 == nil {
		t.Fatal("expected both loads to fail")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("cached load error differs:\n  first:  %v\n  second: %v", err1, err2)
	}
}

// TestParseDirectives covers the suppression grammar.
func TestParseDirectives(t *testing.T) {
	cases := []struct {
		in   string
		name string
		ok   bool
	}{
		{"lint:floateq fill sentinels", "floateq", true},
		{"lint:errdrop", "errdrop", true},
		{" lint:maporder sorted by caller ", "maporder", true},
		{"lint:ignore poolpair handed off", "poolpair", true},
		{"lint:ignore", "", false},
		{"lint:", "", false},
		{"lint:FloatEq case matters", "", false},
		{"lint:fixme(later)", "", false},
		{"just prose about lint: tools", "", false},
		{"nolint:floateq other tools' grammar", "", false},
	}
	for _, c := range cases {
		name, ok := parseDirectives(c.in)
		if ok != c.ok || name != c.name {
			t.Errorf("parseDirectives(%q) = %q,%v; want %q,%v", c.in, name, ok, c.name, c.ok)
		}
	}
}

// TestParseWant covers the expectation grammar used by the corpora.
func TestParseWant(t *testing.T) {
	if got := parseWant(`"one"`); len(got) != 1 || got[0] != "one" {
		t.Errorf(`parseWant("one") = %q`, got)
	}
	if got := parseWant(`"a" "b"`); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf(`parseWant("a" "b") = %q`, got)
	}
	if got := parseWant(`"esc\"aped"`); len(got) != 1 || got[0] != `esc"aped` {
		t.Errorf("parseWant escape = %q", got)
	}
	if got := parseWant("no quotes"); got != nil {
		t.Errorf("parseWant(no quotes) = %q, want nil", got)
	}
}

// TestSuppressionCoversDirectiveAndNextLine pins the directive scope:
// the line it is on and the one below, nothing else.
func TestSuppressionCoversDirectiveAndNextLine(t *testing.T) {
	pkg := loadCorpus(t, "testdata/src/floateq")
	var file string
	var dirLine int
	for k := range pkg.supp {
		if k.analyzer == "floateq" {
			file, dirLine = k.file, k.line
			break
		}
	}
	if file == "" {
		t.Fatal("floateq corpus has no suppression directive")
	}
	pos := func(line int) bool {
		return pkg.suppressed("floateq", position(file, line))
	}
	// The directive covers two lines; one of them is dirLine itself.
	if !pos(dirLine) {
		t.Errorf("directive line %d not suppressed", dirLine)
	}
	if pos(dirLine+5) || pos(dirLine-2) {
		t.Error("suppression leaks beyond the directive's two-line scope")
	}
	if pkg.suppressed("maporder", position(file, dirLine)) {
		t.Error("suppression leaks across analyzers")
	}
}

// TestAnalyzerPathRestriction: floateq must not fire outside its
// packages (or its own corpus).
func TestAnalyzerPathRestriction(t *testing.T) {
	a := FloatEqAnalyzer
	if a.appliesTo("climcompress/internal/stats") != true {
		t.Error("floateq must apply to internal/stats")
	}
	if a.appliesTo("climcompress/internal/report") {
		t.Error("floateq must not apply to internal/report")
	}
	if !a.appliesTo("climcompress/internal/lint/testdata/src/floateq") {
		t.Error("floateq must apply to its own corpus")
	}
	if MapOrderAnalyzer.appliesTo("climcompress/internal/report") != true {
		t.Error("maporder is unrestricted and must apply everywhere")
	}
}
