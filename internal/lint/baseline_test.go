package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func jd(file, analyzer, msg string, line int) JSONDiagnostic {
	return JSONDiagnostic{File: file, Line: line, Analyzer: analyzer, Message: msg}
}

func TestNewFindingsMultisetDiff(t *testing.T) {
	base := []JSONDiagnostic{
		jd("a.go", "floateq", "comparison", 10),
		jd("a.go", "floateq", "comparison", 20),
		jd("b.go", "errdrop", "dropped", 5),
	}
	cur := []JSONDiagnostic{
		jd("a.go", "floateq", "comparison", 12), // moved: baselined
		jd("a.go", "floateq", "comparison", 22), // moved: baselined
		jd("a.go", "floateq", "comparison", 30), // third instance: new
		jd("b.go", "maporder", "range over", 5), // new analyzer: new
	}
	fresh := NewFindings(cur, base)
	if len(fresh) != 2 {
		t.Fatalf("got %d new findings, want 2: %v", len(fresh), fresh)
	}
	if fresh[0].Line != 30 || fresh[1].Analyzer != "maporder" {
		t.Errorf("wrong findings survived the diff: %v", fresh)
	}
}

func TestNewFindingsIgnoresSuppressed(t *testing.T) {
	cur := []JSONDiagnostic{
		{File: "a.go", Analyzer: "gocapture", Message: "race", Suppressed: true},
	}
	if fresh := NewFindings(cur, nil); len(fresh) != 0 {
		t.Errorf("suppressed finding treated as new: %v", fresh)
	}
	base := []JSONDiagnostic{
		{File: "a.go", Analyzer: "gocapture", Message: "race", Suppressed: true},
	}
	cur2 := []JSONDiagnostic{
		{File: "a.go", Analyzer: "gocapture", Message: "race"},
	}
	if fresh := NewFindings(cur2, base); len(fresh) != 1 {
		t.Error("a suppressed baseline entry must not credit an active finding")
	}
}

func TestToJSONRelativizesPaths(t *testing.T) {
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: filepath.Join("/mod", "internal", "x", "f.go"), Line: 3, Column: 7},
		Analyzer: "nondet",
		Message:  "m",
	}}
	out := ToJSON("/mod", diags)
	if out[0].File != "internal/x/f.go" {
		t.Errorf("File = %q, want module-relative slash path", out[0].File)
	}
	if out[0].Line != 3 || out[0].Col != 7 {
		t.Errorf("position not carried: %+v", out[0])
	}
	// Outside the module: keep the absolute path rather than a ../ tangle.
	out = ToJSON("/elsewhere/deep/dir", diags)
	if out[0].File != "/mod/internal/x/f.go" {
		t.Errorf("outside-module File = %q", out[0].File)
	}
}

func TestReadBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint-baseline.json")
	want := []JSONDiagnostic{jd("a.go", "floateq", "m", 1)}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("round trip mismatch: %v", got)
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baseline file must error, not read as empty")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := ReadBaseline(bad); err == nil {
		t.Error("malformed baseline must error")
	}
}
