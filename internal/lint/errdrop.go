package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer is a stricter errcheck than go vet provides. It
// reports a call whose error result is discarded when the callee is
//
//   - any function or method defined in this module (our own APIs
//     return errors deliberately; dropping one is always a decision
//     worth recording), or
//   - any Close or Flush method, stdlib included — a dropped Close on
//     a written file loses the last buffered bytes silently, which is
//     exactly the failure a bit-reproducible pipeline cannot tolerate,
//     or
//   - net/http's serve entry points (Serve, ListenAndServe, their TLS
//     twins, and Shutdown) — a dropped serve error is a daemon that
//     died without anyone noticing, and a dropped Shutdown error is a
//     drain that silently abandoned in-flight requests. climatebenchd
//     made these paths load-bearing.
//
// "Discarded" covers a bare call statement, a `defer x.Close()`, and a
// blank assignment `_ = x.Close()`. Read-side closes where no data can
// be lost are suppressed with //lint:errdrop plus a justification.
//
// One contract-driven exemption: par.Each and par.EachLimit document
// that the only error they return is the first non-nil error from fn,
// so a call whose closure argument only ever returns the literal nil
// cannot produce an error, and dropping that structurally-nil result is
// the package's sanctioned collect-errors-per-index idiom.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "no silently discarded errors from module APIs or Close/Flush",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDropped(p, call, "")
				}
			case *ast.DeferStmt:
				checkDropped(p, s.Call, "deferred ")
			case *ast.GoStmt:
				checkDropped(p, s.Call, "spawned ")
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
					checkDropped(p, call, "blank-assigned ")
				}
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// checkDropped reports call if its error result is being discarded and
// the callee falls under this analyzer's contract.
func checkDropped(p *Pass, call *ast.CallExpr, how string) {
	fn := calleeFunc(p, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	name := fn.Name()
	closeFlush := name == "Close" || name == "Flush"
	httpServe := isHTTPServeEntry(fn)
	if !closeFlush && !httpServe && !isModuleOwn(p, fn) {
		return
	}
	if isNilOnlyParEach(p, call, fn) {
		return
	}
	what := "error"
	if closeFlush || httpServe {
		what = name + " error"
	}
	p.Reportf(call.Pos(), "%scall to %s discards its %s: handle it or annotate with //lint:errdrop", how, qualifiedName(p, fn), what)
}

// httpServeEntryFuncs are net/http's blocking serve entry points and the
// graceful-drain call. Every one returns an error that means "the daemon
// is not serving" (or "the drain gave up"), which no server may ignore.
var httpServeEntryFuncs = map[string]bool{
	"Serve": true, "ServeTLS": true,
	"ListenAndServe": true, "ListenAndServeTLS": true,
	"Shutdown": true,
}

// isHTTPServeEntry reports whether fn is one of net/http's serve entry
// points (package-level function or *http.Server method — both are
// declared in package net/http, so one package check covers them).
func isHTTPServeEntry(fn *types.Func) bool {
	if !httpServeEntryFuncs[fn.Name()] {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "net/http"
}

// isNilOnlyParEach reports whether call is par.Each/par.EachLimit with
// a function-literal worker that can only return the literal nil. By
// those functions' documented contract their result is then
// structurally nil and safe to drop.
func isNilOnlyParEach(p *Pass, call *ast.CallExpr, fn *types.Func) bool {
	if fn.Name() != "Each" && fn.Name() != "EachLimit" {
		return false
	}
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/par") {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		return false
	}
	nilOnly := true
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if !nilOnly {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // nested closures return to their own caller
		case *ast.ReturnStmt:
			if len(s.Results) != 1 {
				nilOnly = false
				return false
			}
			id, ok := ast.Unparen(s.Results[0]).(*ast.Ident)
			if !ok || id.Name != "nil" {
				nilOnly = false
			}
		}
		return true
	})
	return nilOnly
}

// qualifiedName renders pkg.Fn for a diagnostic.
func qualifiedName(p *Pass, fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
