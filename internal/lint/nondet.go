package lint

import (
	"go/ast"
	"strings"
)

// NonDetAnalyzer guards the deterministic pipeline packages — the ones
// whose outputs are pinned by exact-byte golden tests and whose
// artifact-cache keys assume a run is a pure function of its inputs.
// Inside them it reports:
//
//   - time.Now calls (wall-clock leaking into results or cache keys),
//   - calls through math/rand's global source (unseeded; every process
//     sees a different stream) — methods on an explicitly constructed
//     *rand.Rand are fine because its seed is chosen by the caller,
//   - fmt print/format calls passed a map-typed argument (rendered key
//     order is a property of the fmt version, not of the data; callers
//     must sort keys and format entries explicitly).
var NonDetAnalyzer = &Analyzer{
	Name: "nondet",
	Doc:  "no wall-clock, unseeded randomness, or map formatting in deterministic packages",
	Paths: []string{
		"internal/ensemble",
		"internal/experiments",
		"internal/artifact",
		"internal/report",
	},
	Run: runNonDet,
}

// fmtFormatFuncs is every fmt function that renders its operands,
// including the Sprint family: a map formatted into a string is just as
// order-sensitive as one printed to a stream.
var fmtFormatFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func runNonDet(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg := importedPackage(p, call)
			name := calleeName(call)
			switch pkg {
			case "time":
				if name == "Now" {
					p.Reportf(call.Pos(), "time.Now in a deterministic package: wall clock must not influence pipeline output")
				}
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewSource, NewZipf, ...) only build
				// explicitly seeded generators; every other package-level
				// function goes through the shared global source.
				if !strings.HasPrefix(name, "New") {
					p.Reportf(call.Pos(), "%s.%s uses the global random source: seed an explicit rand.Rand instead", pkgBase(pkg), name)
				}
			case "fmt":
				if fmtFormatFuncs[name] {
					for _, arg := range call.Args {
						if t := p.TypeOf(arg); t != nil && isMapType(t) {
							p.Reportf(arg.Pos(), "map passed to fmt.%s: formatted key order is not guaranteed; sort keys and format entries explicitly", name)
						}
					}
				}
			}
			return true
		})
	}
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
