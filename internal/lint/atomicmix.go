package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// AtomicMixAnalyzer catches the half-migrated counter: a variable or
// struct field updated through sync/atomic in one function and read or
// written plainly in another. The mixed pattern is worse than either
// discipline alone — the atomic side looks audited, while the plain side
// silently tears, reorders, or caches the value. (The serve/artifact
// counters dodged this by using the atomic.Int64 wrapper types, whose
// methods make plain access unrepresentable; this analyzer guards the
// classic &x function style, which has no such guardrail.)
//
// Every identifier resolving to a variable that is the pointee of a
// sync/atomic call argument is reported unless that use is itself part
// of an atomic call. The declaration (including its initializer, which
// runs before the variable is shared) is exempt. A use that is
// deliberately unsynchronized — a final read after all goroutines are
// joined, say — documents itself with //lint:atomicmix.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "variables accessed through sync/atomic in one place and by plain load/store in another",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) {
	// Pass 1: collect every variable used as &v in a sync/atomic call,
	// plus the identifiers that make up those calls (exempt from pass 2).
	atomicAt := make(map[types.Object]token.Pos) // object -> earliest atomic site
	exempt := make(map[*ast.Ident]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || importedPackage(p, call) != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			var id *ast.Ident
			switch operand := ast.Unparen(un.X).(type) {
			case *ast.Ident:
				id = operand
			case *ast.SelectorExpr:
				id = operand.Sel
				if base, ok := ast.Unparen(operand.X).(*ast.Ident); ok {
					exempt[base] = true // the receiver itself is not a plain access
				}
			default:
				return true
			}
			obj, ok := p.ObjectOf(id).(*types.Var)
			if !ok {
				return true
			}
			exempt[id] = true
			if at, seen := atomicAt[obj]; !seen || id.Pos() < at {
				atomicAt[obj] = id.Pos()
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: every other use of those objects is a plain access.
	var plain []*ast.Ident
	for id, obj := range p.Pkg.Info.Uses {
		if _, tracked := atomicAt[obj]; tracked && !exempt[id] {
			plain = append(plain, id)
		}
	}
	sort.Slice(plain, func(i, j int) bool { return plain[i].Pos() < plain[j].Pos() })
	for _, id := range plain {
		obj := p.Pkg.Info.Uses[id]
		at := p.Pkg.Fset.Position(atomicAt[obj])
		p.Reportf(id.Pos(), "%q is updated through sync/atomic (%s:%d) but accessed plainly here; mixing the two loses the atomicity of both: use sync/atomic for every access, or switch the field to an atomic.%s-style wrapper type", id.Name, filepath.Base(at.Filename), at.Line, wrapperHint(obj.Type()))
	}
}

// wrapperHint names the atomic wrapper type matching a plain type, for
// the diagnostic's suggestion.
func wrapperHint(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		name := b.Name()
		if len(name) > 0 {
			return strings.ToUpper(name[:1]) + name[1:]
		}
	}
	return "Value"
}
