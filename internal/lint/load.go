package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader turns directory patterns into fully type-checked Packages
// using only the standard library. Imports inside this module are
// resolved by recursively loading the imported directory; standard
// library imports are delegated to go/importer's source importer, which
// type-checks GOROOT packages from source and needs no pre-built export
// data. All loaders share one FileSet (and therefore one stdlib
// importer) so repeated loads in one process reuse the stdlib work.

var (
	sharedFset    = token.NewFileSet()
	stdImportOnce sync.Once
	stdImport     types.ImporterFrom
)

func stdImporter() types.ImporterFrom {
	stdImportOnce.Do(func() {
		stdImport = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return stdImport
}

// Package is one loaded, type-checked package.
type Package struct {
	Path   string // import path within the module
	Dir    string // absolute directory
	Module string // module path from go.mod
	// GoVersion is the module's `go` directive ("1.22"); analyzers whose
	// rules depend on language semantics that changed across releases
	// (loop-variable scoping) consult it. Empty when go.mod has none.
	GoVersion string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info

	supp map[suppKey]bool
}

type suppKey struct {
	file     string
	line     int
	analyzer string
}

// suppressed reports whether a //lint: directive covers this position
// for this analyzer. A directive covers its own line and the next line,
// so it can sit at the end of the offending statement or alone above it.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	return p.supp[suppKey{file: pos.Filename, line: pos.Line, analyzer: analyzer}]
}

// LoadError aggregates everything that went wrong loading one package;
// climatelint prints it and exits with a distinct status so a broken
// tree is not mistaken for a clean one.
type LoadError struct {
	Path string
	Msgs []string
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("loading %s: %s", e.Path, strings.Join(e.Msgs, "; "))
}

// Loader loads and caches packages of a single module.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string
	GoVersion  string

	startDir string
	pkgs     map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	tpkg    *types.Package
	err     error
	loading bool
}

// NewLoader locates the enclosing module of startDir (by walking up to
// go.mod) and returns a loader rooted there.
func NewLoader(startDir string) (*Loader, error) {
	abs, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	dir := abs
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			modPath := modulePathFrom(string(data))
			if modPath == "" {
				return nil, fmt.Errorf("no module line in %s", filepath.Join(dir, "go.mod"))
			}
			return &Loader{
				Fset:       sharedFset,
				ModuleDir:  dir,
				ModulePath: modPath,
				GoVersion:  goVersionFrom(string(data)),
				startDir:   abs,
				pkgs:       make(map[string]*loadEntry),
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		dir = parent
	}
}

// modulePathFrom extracts the module path from go.mod contents.
func modulePathFrom(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// goVersionFrom extracts the `go` directive value from go.mod contents.
func goVersionFrom(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Load resolves each pattern to package directories and type-checks
// them. A pattern is a directory (absolute or relative to the loader's
// start directory), optionally ending in "/..." to include every
// package under it. Directories named testdata, or starting with "." or
// "_", are skipped during "..." expansion — matching the go tool — but
// can still be loaded by naming them explicitly.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.startDir, dir)
		}
		dir = filepath.Clean(dir)
		if recursive {
			sub, err := packageDirs(dir)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
		} else {
			add(dir)
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return pkgs, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// packageDirs finds every directory under root holding at least one
// non-test Go file, applying the go tool's pruning rules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor is the inverse of importPathFor, for module-internal imports.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModulePath {
		return l.ModuleDir
	}
	rel := strings.TrimPrefix(importPath, l.ModulePath+"/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// loadDir parses and type-checks the package in dir, memoized.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	entry, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	return entry.pkg, nil
}

// check loads import path from dir: parse, type-check, collect
// suppression directives. Results (including failures) are cached.
func (l *Loader) check(path, dir string) (*loadEntry, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, &LoadError{Path: path, Msgs: []string{"import cycle"}}
		}
		return e, e.err
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	defer func() { e.loading = false }()

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		e.err = &LoadError{Path: path, Msgs: []string{err.Error()}}
		return e, e.err
	}

	var msgs []string
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			msgs = append(msgs, err.Error())
			continue
		}
		files = append(files, f)
	}
	if len(msgs) > 0 {
		e.err = &LoadError{Path: path, Msgs: msgs}
		return e, e.err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(msgs) < 20 {
				msgs = append(msgs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(msgs) > 0 {
		e.err = &LoadError{Path: path, Msgs: msgs}
		return e, e.err
	}

	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Module:    l.ModulePath,
		GoVersion: l.GoVersion,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		supp:      make(map[suppKey]bool),
	}
	for _, f := range files {
		fname := l.Fset.Position(f.Pos()).Filename
		for _, d := range fileDirectives(l.Fset, f) {
			// A directive covers its own line and the next one.
			pkg.supp[suppKey{file: fname, line: d.line, analyzer: d.analyzer}] = true
			pkg.supp[suppKey{file: fname, line: d.line + 1, analyzer: d.analyzer}] = true
		}
	}
	e.pkg = pkg
	e.tpkg = tpkg
	return e, nil
}

// Import implements types.Importer for the type-checker: module-internal
// imports load recursively through this loader; everything else is
// assumed to be standard library and goes to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		e, err := l.check(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return e.tpkg, nil
	}
	pkg, err := stdImporter().ImportFrom(path, l.ModuleDir, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	return pkg, nil
}

// AsLoadError unwraps err to a *LoadError if it is one.
func AsLoadError(err error) (*LoadError, bool) {
	var le *LoadError
	if errors.As(err, &le) {
		return le, true
	}
	return nil, false
}
