package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Machine-readable output and baseline diffing. The JSON form exists for
// two consumers: tooling that wants findings without parsing the text
// format, and the baseline workflow — check in today's findings, then
// fail the build only on *new* ones, so a new analyzer can land before
// every annotation it demands has been written.

// JSONDiagnostic is the wire form of one finding. File is
// module-relative with forward slashes, so a baseline checked in on one
// machine matches on every other.
type JSONDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// ToJSON converts diagnostics to their wire form, relativizing file
// paths against the module root.
func ToJSON(moduleDir string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:       relFile(moduleDir, d.Pos.Filename),
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	return out
}

func relFile(moduleDir, filename string) string {
	if rel, err := filepath.Rel(moduleDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// ReadBaseline loads a baseline file written by `climatelint -json`.
func ReadBaseline(path string) ([]JSONDiagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base []JSONDiagnostic
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return base, nil
}

// NewFindings returns the current findings not accounted for by the
// baseline. Matching is a multiset diff on (file, analyzer, message) —
// line and column are deliberately ignored, so edits that shift code
// around do not resurrect baselined findings, while a second instance of
// an identical finding in the same file still counts as new. Suppressed
// entries on either side are ignored: a //lint: directive already
// records the decision in the source.
func NewFindings(current, baseline []JSONDiagnostic) []JSONDiagnostic {
	credit := make(map[string]int)
	for _, b := range baseline {
		if !b.Suppressed {
			credit[baselineKey(b)]++
		}
	}
	var fresh []JSONDiagnostic
	for _, d := range current {
		if d.Suppressed {
			continue
		}
		k := baselineKey(d)
		if credit[k] > 0 {
			credit[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}

func baselineKey(d JSONDiagnostic) string {
	return d.File + "\x00" + d.Analyzer + "\x00" + d.Message
}
