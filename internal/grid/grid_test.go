package grid

import (
	"math"
	"testing"
)

func TestPresets(t *testing.T) {
	cases := []struct {
		name string
		hor  int
		lev  int
	}{
		{"test", 128, 4},
		{"small", 1152, 8},
		{"bench", 10368, 16},
		{"ne30", 48600, 30},
	}
	for _, c := range cases {
		g := ByName(c.name)
		if g == nil {
			t.Fatalf("preset %q missing", c.name)
		}
		if g.Horizontal() != c.hor {
			t.Errorf("%s: horizontal = %d, want %d", c.name, g.Horizontal(), c.hor)
		}
		if g.NLev != c.lev {
			t.Errorf("%s: nlev = %d, want %d", c.name, g.NLev, c.lev)
		}
		if g.Size3D() != c.hor*c.lev {
			t.Errorf("%s: Size3D inconsistent", c.name)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown preset should return nil")
	}
}

func TestCoordinates(t *testing.T) {
	g := New("t", 10, 20, 5)
	if len(g.Lats) != 10 || len(g.Lons) != 20 || len(g.Levs) != 5 {
		t.Fatal("coordinate slices wrong length")
	}
	if g.Lats[0] >= g.Lats[9] {
		t.Error("lats not ascending")
	}
	if g.Lats[0] < -90 || g.Lats[9] > 90 {
		t.Error("lats out of range")
	}
	if g.Lons[0] != 0 || g.Lons[19] >= 360 {
		t.Error("lons out of range")
	}
	for k := 1; k < 5; k++ {
		if g.Levs[k] <= g.Levs[k-1] {
			t.Error("levels not increasing in pressure")
		}
	}
}

func TestIndex(t *testing.T) {
	g := New("t", 4, 6, 3)
	seen := map[int]bool{}
	for lev := 0; lev < 3; lev++ {
		for lat := 0; lat < 4; lat++ {
			for lon := 0; lon < 6; lon++ {
				i := g.Index(lev, lat, lon)
				if i < 0 || i >= g.Size3D() {
					t.Fatalf("index out of bounds: %d", i)
				}
				if seen[i] {
					t.Fatalf("duplicate index %d", i)
				}
				seen[i] = true
			}
		}
	}
}

func TestAreaWeightsNormalized(t *testing.T) {
	g := New("t", 32, 64, 4)
	w := g.AreaWeights()
	var sum float64
	for _, wi := range w {
		sum += wi * float64(g.NLon)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	// Equator rows must outweigh polar rows.
	if w[16] <= w[0] {
		t.Error("equatorial weight not larger than polar")
	}
}

func TestStringContainsName(t *testing.T) {
	g := Bench()
	if got := g.String(); got == "" || g.Name != "bench" {
		t.Fatalf("String() = %q", got)
	}
}
