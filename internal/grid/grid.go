// Package grid defines the lat–lon–level grids on which synthetic climate
// fields are generated. The paper's CAM runs use a spectral-element ne30
// grid with 48,602 horizontal columns and 30 levels; we model it with a
// regular latitude–longitude grid of equivalent size and provide smaller
// presets so the full 101-member experiment suite runs on a laptop.
package grid

import (
	"fmt"
	"math"
)

// Grid is a regular latitude–longitude grid with NLev vertical levels.
// Horizontal storage order is latitude-major: index = lat*NLon + lon.
// 3-D fields are level-major: index = lev*NLat*NLon + lat*NLon + lon.
type Grid struct {
	Name string
	NLat int
	NLon int
	NLev int

	Lats []float64 // cell-center latitudes, degrees, south to north
	Lons []float64 // cell-center longitudes, degrees, 0 .. 360
	Levs []float64 // nominal mid-level pressures, hPa, top to bottom
}

// New constructs a grid with equally spaced cell centers.
func New(name string, nlat, nlon, nlev int) *Grid {
	if nlat < 2 || nlon < 2 || nlev < 1 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%dx%d", nlat, nlon, nlev))
	}
	g := &Grid{Name: name, NLat: nlat, NLon: nlon, NLev: nlev}
	g.Lats = make([]float64, nlat)
	dlat := 180.0 / float64(nlat)
	for i := range g.Lats {
		g.Lats[i] = -90 + dlat*(float64(i)+0.5)
	}
	g.Lons = make([]float64, nlon)
	dlon := 360.0 / float64(nlon)
	for i := range g.Lons {
		g.Lons[i] = dlon * float64(i)
	}
	g.Levs = make([]float64, nlev)
	// Roughly hybrid-sigma mid-level pressures from ~3 hPa to ~993 hPa.
	for k := range g.Levs {
		frac := (float64(k) + 0.5) / float64(nlev)
		g.Levs[k] = 3 + 990*frac*frac // quadratic spacing, denser aloft
	}
	return g
}

// Horizontal returns the number of horizontal columns (NLat × NLon).
func (g *Grid) Horizontal() int { return g.NLat * g.NLon }

// Size3D returns the number of points in a 3-D field.
func (g *Grid) Size3D() int { return g.NLev * g.NLat * g.NLon }

// Index returns the flat index of (lev, lat, lon).
func (g *Grid) Index(lev, lat, lon int) int {
	return (lev*g.NLat+lat)*g.NLon + lon
}

// AreaWeights returns per-latitude cos(φ) quadrature weights normalized to
// sum to 1 over the horizontal grid; used for area-weighted global means.
func (g *Grid) AreaWeights() []float64 {
	w := make([]float64, g.NLat)
	var sum float64
	for i, lat := range g.Lats {
		w[i] = math.Cos(lat * math.Pi / 180)
		sum += w[i]
	}
	norm := 1 / (sum * float64(g.NLon))
	for i := range w {
		w[i] *= norm
	}
	return w
}

func (g *Grid) String() string {
	return fmt.Sprintf("%s (%d×%d×%d = %d columns × %d levels)",
		g.Name, g.NLat, g.NLon, g.NLev, g.Horizontal(), g.NLev)
}

// Presets. NE30 approximates the paper's 48,602-column, 30-level grid
// (162 × 300 = 48,600 columns). Bench is the default for the error-metric
// experiments; Small is the default for the 101-member ensemble experiments;
// Test keeps unit tests fast.
var (
	Test  = func() *Grid { return New("test", 8, 16, 4) }
	Small = func() *Grid { return New("small", 24, 48, 8) }
	Bench = func() *Grid { return New("bench", 72, 144, 16) }
	NE30  = func() *Grid { return New("ne30", 162, 300, 30) }
)

// ByName resolves a preset name; it returns nil for unknown names.
func ByName(name string) *Grid {
	switch name {
	case "test":
		return Test()
	case "small":
		return Small()
	case "bench":
		return Bench()
	case "ne30":
		return NE30()
	}
	return nil
}
