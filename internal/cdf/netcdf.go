// NetCDF classic-format (CDF-1) export and import, so datasets produced
// here are readable by the standard NetCDF toolchain (ncdump, xarray, NCO)
// and real NetCDF classic files can be pulled in for verification. Only
// the features this repository uses are covered: named dimensions, text
// attributes, and float/double variables without a record dimension.
//
// Format reference: the NetCDF classic format specification (the on-disk
// layout of CDF-1 files).

package cdf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// NetCDF classic on-disk tags.
const (
	ncDimension = 0x0a
	ncVariable  = 0x0b
	ncAttribute = 0x0c

	ncChar   = 2
	ncFloat  = 5
	ncDouble = 6
)

// ExportNetCDF writes the dataset as a NetCDF classic (CDF-1) file:
// uncompressed, big-endian, with all attributes as text. Fill-bearing
// variables gain the conventional _FillValue attribute.
func (f *File) ExportNetCDF(w io.Writer) error {
	bw := bufio.NewWriter(w)

	// ---- plan the file layout ----
	type varPlan struct {
		v     *Variable
		vsize int
		begin int
	}
	pad4 := func(n int) int { return (n + 3) &^ 3 }
	nameBytes := func(s string) int { return 4 + pad4(len(s)) }

	headerSize := 4 /*magic*/ + 4 /*numrecs*/
	// dim_list
	headerSize += 8
	for _, d := range f.Dims {
		headerSize += nameBytes(d.Name) + 4
	}
	attrListSize := func(attrs []Attr, hasFill bool) int {
		n := len(attrs)
		if hasFill {
			n++
		}
		if n == 0 {
			return 8
		}
		size := 8
		for _, a := range attrs {
			size += nameBytes(a.Name) + 4 /*type*/ + 4 /*nelems*/ + pad4(len(a.Value))
		}
		if hasFill {
			size += nameBytes("_FillValue") + 4 + 4 + 4 // one float
		}
		return size
	}
	headerSize += attrListSize(f.Attrs, false)
	// var_list
	headerSize += 8
	plans := make([]varPlan, len(f.Vars))
	for i := range f.Vars {
		v := &f.Vars[i]
		headerSize += nameBytes(v.Name) + 4 + 4*len(v.Dims) +
			attrListSize(v.Attrs, v.HasFill) + 4 /*type*/ + 4 /*vsize*/ + 4 /*begin*/
		elem := 4
		if v.Type == Float64 {
			elem = 8
		}
		plans[i] = varPlan{v: v, vsize: pad4(elem * v.Len(f))}
	}
	offset := pad4(headerSize)
	for i := range plans {
		plans[i].begin = offset
		offset += plans[i].vsize
	}

	// ---- emit ----
	be := binary.BigEndian
	var scratch [8]byte
	writeU32 := func(v uint32) {
		be.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}
	writeName := func(s string) {
		writeU32(uint32(len(s)))
		bw.WriteString(s)
		for p := len(s); p%4 != 0; p++ {
			bw.WriteByte(0)
		}
	}
	writeAttrList := func(attrs []Attr, fill float32, hasFill bool) {
		n := len(attrs)
		if hasFill {
			n++
		}
		if n == 0 {
			writeU32(0) // ABSENT tag
			writeU32(0)
			return
		}
		writeU32(ncAttribute)
		writeU32(uint32(n))
		for _, a := range attrs {
			writeName(a.Name)
			writeU32(ncChar)
			writeU32(uint32(len(a.Value)))
			bw.WriteString(a.Value)
			for p := len(a.Value); p%4 != 0; p++ {
				bw.WriteByte(0)
			}
		}
		if hasFill {
			writeName("_FillValue")
			writeU32(ncFloat)
			writeU32(1)
			writeU32(math.Float32bits(fill))
		}
	}

	bw.WriteString("CDF\x01")
	writeU32(0) // numrecs: no record dimension
	writeU32(ncDimension)
	writeU32(uint32(len(f.Dims)))
	for _, d := range f.Dims {
		writeName(d.Name)
		writeU32(uint32(d.Len))
	}
	writeAttrList(f.Attrs, 0, false)
	writeU32(ncVariable)
	writeU32(uint32(len(f.Vars)))
	for i := range plans {
		v := plans[i].v
		writeName(v.Name)
		writeU32(uint32(len(v.Dims)))
		for _, d := range v.Dims {
			writeU32(uint32(d))
		}
		writeAttrList(v.Attrs, v.Fill, v.HasFill)
		if v.Type == Float64 {
			writeU32(ncDouble)
		} else {
			writeU32(ncFloat)
		}
		writeU32(uint32(plans[i].vsize))
		writeU32(uint32(plans[i].begin))
	}
	// Pad the header to the first data offset.
	for p := headerSize; p < pad4(headerSize); p++ {
		bw.WriteByte(0)
	}
	// Variable data, big-endian, 4-byte padded.
	for i := range plans {
		v := plans[i].v
		written := 0
		if v.Type == Float64 {
			data, err := f.decodeVar64(v)
			if err != nil {
				return err
			}
			for _, x := range data {
				be.PutUint64(scratch[:8], math.Float64bits(x))
				bw.Write(scratch[:8])
			}
			written = 8 * len(data)
		} else {
			data, err := f.decodeVar(v)
			if err != nil {
				return err
			}
			for _, x := range data {
				be.PutUint32(scratch[:4], math.Float32bits(x))
				bw.Write(scratch[:4])
			}
			written = 4 * len(data)
		}
		for p := written; p < plans[i].vsize; p++ {
			bw.WriteByte(0)
		}
	}
	return bw.Flush()
}

// ExportNetCDFFile writes a NetCDF classic file to path.
func (f *File) ExportNetCDFFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.ExportNetCDF(fh); err != nil {
		//lint:errdrop best-effort cleanup of an already-failed write; the export error is what the caller sees
		fh.Close()
		return err
	}
	return fh.Close()
}

// ImportNetCDF parses a NetCDF classic (CDF-1 or CDF-2) file containing
// float/double variables without a record dimension. Text attributes are
// kept; a float _FillValue attribute populates the variable's fill.
func ImportNetCDF(r io.Reader) (*File, error) {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<30))
	if err != nil {
		return nil, err
	}
	p := &ncParser{buf: raw}
	magic := p.bytes(3)
	version := p.u8()
	if string(magic) != "CDF" || (version != 1 && version != 2) {
		return nil, errors.New("cdf: not a NetCDF classic file")
	}
	p.offset64 = version == 2
	numrecs := p.u32()
	if numrecs != 0 {
		return nil, errors.New("cdf: record dimensions are not supported")
	}
	out := New()

	// Hostile headers can claim absurd counts; everything parsed below is
	// bounded so allocations stay proportional to the actual input.
	const (
		maxEntities   = 1 << 16 // dims/vars/attrs per list
		maxDimsPerVar = 256
		maxValues     = 1 << 28 // values per variable
	)

	// dim_list
	tag, count := p.u32(), p.u32()
	if tag != ncDimension && !(tag == 0 && count == 0) {
		return nil, fmt.Errorf("cdf: unexpected dimension tag %#x", tag)
	}
	if count > maxEntities {
		return nil, errors.New("cdf: implausible dimension count")
	}
	for i := uint32(0); i < count && p.err == nil; i++ {
		name := p.name()
		size := p.u32()
		if size > maxValues {
			return nil, fmt.Errorf("cdf: dimension %s implausibly large", name)
		}
		out.AddDim(name, int(size))
	}
	// global attributes
	gattrs, _, err2 := p.attrList()
	if err2 != nil {
		return nil, err2
	}
	out.Attrs = gattrs

	// var_list
	tag, count = p.u32(), p.u32()
	if tag != ncVariable && !(tag == 0 && count == 0) {
		return nil, fmt.Errorf("cdf: unexpected variable tag %#x", tag)
	}
	if count > maxEntities {
		return nil, errors.New("cdf: implausible variable count")
	}
	type pending struct {
		idx   int // index into out.Vars (the slice reallocates while growing)
		typ   uint32
		begin uint64
	}
	var pendings []pending
	for i := uint32(0); i < count && p.err == nil; i++ {
		name := p.name()
		nd := p.u32()
		if nd > maxDimsPerVar {
			return nil, fmt.Errorf("cdf: variable %s has implausible rank %d", name, nd)
		}
		dims := make([]int, nd)
		nvals := 1
		for j := range dims {
			d := int(p.u32())
			if d < 0 || d >= len(out.Dims) {
				return nil, fmt.Errorf("cdf: variable %s has bad dimension id", name)
			}
			dims[j] = d
			nvals *= out.Dims[d].Len
			if nvals > maxValues || nvals < 0 {
				return nil, fmt.Errorf("cdf: variable %s implausibly large", name)
			}
		}
		attrs, fill, err2 := p.attrList()
		if err2 != nil {
			return nil, err2
		}
		typ := p.u32()
		p.u32() // vsize (recomputed)
		var begin uint64
		if p.offset64 {
			begin = p.u64()
		} else {
			begin = uint64(p.u32())
		}
		if typ != ncFloat && typ != ncDouble {
			return nil, fmt.Errorf("cdf: variable %s has unsupported type %d", name, typ)
		}
		v := Variable{Name: name, Dims: dims, Attrs: attrs}
		if typ == ncDouble {
			v.Type = Float64
		}
		if fill != nil {
			v.HasFill, v.Fill = true, *fill
		}
		out.Vars = append(out.Vars, v)
		pendings = append(pendings, pending{idx: len(out.Vars) - 1, typ: typ, begin: begin})
	}
	if p.err != nil {
		return nil, p.err
	}
	// data
	for _, pd := range pendings {
		v := &out.Vars[pd.idx]
		n := v.Len(out)
		elem := 4
		if pd.typ == ncDouble {
			elem = 8
		}
		end := pd.begin + uint64(elem*n)
		if pd.begin > uint64(len(raw)) || end > uint64(len(raw)) {
			return nil, fmt.Errorf("cdf: variable %s data out of bounds", v.Name)
		}
		seg := raw[pd.begin:end]
		if pd.typ == ncDouble {
			data := make([]float64, n)
			for i := range data {
				data[i] = math.Float64frombits(binary.BigEndian.Uint64(seg[8*i:]))
			}
			v.data64 = data
		} else {
			data := make([]float32, n)
			for i := range data {
				data[i] = math.Float32frombits(binary.BigEndian.Uint32(seg[4*i:]))
			}
			v.data = data
		}
	}
	return out, nil
}

// ImportNetCDFFile parses a NetCDF classic file from path.
func ImportNetCDFFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:errdrop read side; a Close error cannot lose data
	defer fh.Close()
	return ImportNetCDF(fh)
}

// ncParser is a minimal big-endian cursor over a classic-format header.
type ncParser struct {
	buf      []byte
	pos      int
	offset64 bool
	err      error
}

func (p *ncParser) bytes(n int) []byte {
	if p.err != nil || p.pos+n > len(p.buf) {
		if p.err == nil {
			p.err = errors.New("cdf: truncated NetCDF header")
		}
		return make([]byte, n)
	}
	out := p.buf[p.pos : p.pos+n]
	p.pos += n
	return out
}

func (p *ncParser) u8() byte    { return p.bytes(1)[0] }
func (p *ncParser) u32() uint32 { return binary.BigEndian.Uint32(p.bytes(4)) }
func (p *ncParser) u64() uint64 { return binary.BigEndian.Uint64(p.bytes(8)) }

func (p *ncParser) name() string {
	n := int(p.u32())
	if n < 0 || n > maxStringLen {
		p.err = errors.New("cdf: bad name length")
		return ""
	}
	s := string(p.bytes(n))
	if pad := (4 - n%4) % 4; pad > 0 {
		p.bytes(pad)
	}
	return s
}

// attrList parses an attribute list, returning text attributes and the
// float _FillValue if present. Non-text, non-fill attributes are skipped.
func (p *ncParser) attrList() ([]Attr, *float32, error) {
	tag, count := p.u32(), p.u32()
	if tag == 0 && count == 0 {
		return nil, nil, p.err
	}
	if tag != ncAttribute {
		return nil, nil, fmt.Errorf("cdf: unexpected attribute tag %#x", tag)
	}
	var attrs []Attr
	var fill *float32
	for i := uint32(0); i < count && p.err == nil; i++ {
		name := p.name()
		typ := p.u32()
		nelems := int(p.u32())
		if nelems < 0 || nelems > 1<<24 {
			return nil, nil, errors.New("cdf: implausible attribute size")
		}
		elem := map[uint32]int{1: 1, ncChar: 1, 3: 2, 4: 4, ncFloat: 4, ncDouble: 8}[typ]
		if elem == 0 {
			return nil, nil, fmt.Errorf("cdf: attribute %s has unknown type %d", name, typ)
		}
		size := elem * nelems
		payload := p.bytes(size)
		if pad := (4 - size%4) % 4; pad > 0 {
			p.bytes(pad)
		}
		switch {
		case typ == ncChar:
			attrs = append(attrs, Attr{Name: name, Value: string(payload)})
		case name == "_FillValue" && typ == ncFloat && nelems == 1:
			v := math.Float32frombits(binary.BigEndian.Uint32(payload))
			fill = &v
		}
	}
	return attrs, fill, p.err
}
