package cdf

import (
	"bytes"
	"testing"
)

// FuzzImportNetCDF ensures the classic-format parser never panics.
func FuzzImportNetCDF(f *testing.F) {
	file := New()
	lat := file.AddDim("lat", 2)
	if _, err := file.AddVar("X", []int{lat}, []float32{1, 2}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := file.ExportNetCDF(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CDF\x01"))
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 1<<16 {
			return
		}
		g, err := ImportNetCDF(bytes.NewReader(in))
		if err != nil {
			return
		}
		for _, name := range g.VarNames() {
			v, _ := g.Var(name)
			if v.Type == Float64 {
				_, _ = g.ReadVar64(name)
			} else {
				_, _ = g.ReadVar(name)
			}
		}
	})
}

// FuzzRead ensures the container parser never panics on arbitrary input.
func FuzzRead(f *testing.F) {
	// Seed with a small valid file.
	file := New()
	lat := file.AddDim("lat", 2)
	lon := file.AddDim("lon", 3)
	if _, err := file.AddVar("X", []int{lat, lon}, []float32{1, 2, 3, 4, 5, 6}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := file.Write(&buf, WriteOptions{Codec: "raw"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CCDF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 1<<16 {
			return
		}
		g, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		// A parsed file must also survive variable reads.
		for _, name := range g.VarNames() {
			v, _ := g.Var(name)
			if v.Type == Float64 {
				_, _ = g.ReadVar64(name)
			} else {
				_, _ = g.ReadVar(name)
			}
		}
	})
}
