// Package cdf implements a self-describing container format standing in
// for NetCDF: named dimensions, attributed variables, fill values, and
// per-variable compressed payloads using any codec from the compress
// registry. CESM writes "history files" of this kind; the paper's target
// workflow converts time-slice history files into per-variable time-series
// files with compression applied — see cmd/compresstool and the
// archivepipeline example.
package cdf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"climcompress/internal/compress"
)

// Magic identifies the format; the version byte follows it.
var Magic = [4]byte{'C', 'C', 'D', 'F'}

// Version is the current format version.
const Version = 2

// maxStringLen bounds on-disk string fields during parsing.
const maxStringLen = 1 << 16

// Dim is a named dimension.
type Dim struct {
	Name string
	Len  int
}

// Attr is a name/value attribute pair (values are strings, as in classic
// NetCDF text attributes).
type Attr struct {
	Name  string
	Value string
}

// DataType is a variable's element type.
type DataType byte

// Variable element types. History files are Float32 (CESM truncates on
// write); restart files are Float64.
const (
	Float32 DataType = 0
	Float64 DataType = 1
)

// Variable is one variable's metadata and (possibly compressed) payload.
type Variable struct {
	Name    string
	Type    DataType
	Dims    []int // indices into File.Dims, slowest-varying first
	Attrs   []Attr
	HasFill bool
	Fill    float32
	Codec   string // registry name of the codec used for the payload

	payload []byte
	data    []float32 // set when a Float32 variable was added in memory
	data64  []float64 // set when a Float64 variable was added in memory
}

// Len returns the number of values implied by the variable's dimensions.
func (v *Variable) Len(f *File) int {
	n := 1
	for _, d := range v.Dims {
		n *= f.Dims[d].Len
	}
	return n
}

// File is an in-memory dataset: global attributes, dimensions, variables.
type File struct {
	Attrs []Attr
	Dims  []Dim
	Vars  []Variable
}

// New returns an empty dataset.
func New() *File { return &File{} }

// AddDim appends a dimension and returns its index.
func (f *File) AddDim(name string, n int) int {
	f.Dims = append(f.Dims, Dim{Name: name, Len: n})
	return len(f.Dims) - 1
}

// GlobalAttr appends a global attribute.
func (f *File) GlobalAttr(name, value string) {
	f.Attrs = append(f.Attrs, Attr{Name: name, Value: value})
}

// AddVar appends a variable with its data. dims are dimension indices from
// AddDim. The data length must match the dimension product.
func (f *File) AddVar(name string, dims []int, data []float32, attrs ...Attr) (*Variable, error) {
	n := 1
	for _, d := range dims {
		if d < 0 || d >= len(f.Dims) {
			return nil, fmt.Errorf("cdf: variable %s references unknown dimension %d", name, d)
		}
		n *= f.Dims[d].Len
	}
	if n != len(data) {
		return nil, fmt.Errorf("cdf: variable %s has %d values, dimensions imply %d", name, len(data), n)
	}
	f.Vars = append(f.Vars, Variable{
		Name:  name,
		Dims:  append([]int(nil), dims...),
		Attrs: append([]Attr(nil), attrs...),
		data:  data,
	})
	return &f.Vars[len(f.Vars)-1], nil
}

// AddVar64 appends a double-precision variable (restart-file data).
func (f *File) AddVar64(name string, dims []int, data []float64, attrs ...Attr) (*Variable, error) {
	n := 1
	for _, d := range dims {
		if d < 0 || d >= len(f.Dims) {
			return nil, fmt.Errorf("cdf: variable %s references unknown dimension %d", name, d)
		}
		n *= f.Dims[d].Len
	}
	if n != len(data) {
		return nil, fmt.Errorf("cdf: variable %s has %d values, dimensions imply %d", name, len(data), n)
	}
	f.Vars = append(f.Vars, Variable{
		Name:   name,
		Type:   Float64,
		Dims:   append([]int(nil), dims...),
		Attrs:  append([]Attr(nil), attrs...),
		data64: data,
	})
	return &f.Vars[len(f.Vars)-1], nil
}

// Var returns the variable with the given name.
func (f *File) Var(name string) (*Variable, bool) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], true
		}
	}
	return nil, false
}

// VarNames lists variable names in file order.
func (f *File) VarNames() []string {
	out := make([]string, len(f.Vars))
	for i := range f.Vars {
		out[i] = f.Vars[i].Name
	}
	return out
}

// shapeOf derives the codec Shape from a variable's trailing dimensions:
// (... , lat, lon) with any leading dimensions folded into levels.
func (f *File) shapeOf(v *Variable) compress.Shape {
	nd := len(v.Dims)
	switch nd {
	case 0:
		return compress.Shape{NLev: 1, NLat: 1, NLon: 1}
	case 1:
		return compress.Shape{NLev: 1, NLat: 1, NLon: f.Dims[v.Dims[0]].Len}
	default:
		lat := f.Dims[v.Dims[nd-2]].Len
		lon := f.Dims[v.Dims[nd-1]].Len
		lev := 1
		for _, d := range v.Dims[:nd-2] {
			lev *= f.Dims[d].Len
		}
		return compress.Shape{NLev: lev, NLat: lat, NLon: lon}
	}
}

// WriteOptions controls per-variable compression when writing.
type WriteOptions struct {
	// Codec is the default codec registry name ("raw" stores uncompressed).
	Codec string
	// PerVar overrides the codec for specific variables.
	PerVar map[string]string
}

// Write serializes the dataset. Each variable is compressed with its
// selected codec; variables with fill values are wrapped with special-value
// masking unless the codec handles them natively.
func (f *File) Write(w io.Writer, opts WriteOptions) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}
	writeAttrs(bw, f.Attrs)
	writeUvarint(bw, uint64(len(f.Dims)))
	for _, d := range f.Dims {
		writeString(bw, d.Name)
		writeUvarint(bw, uint64(d.Len))
	}
	writeUvarint(bw, uint64(len(f.Vars)))
	for i := range f.Vars {
		v := &f.Vars[i]
		codecName := opts.Codec
		if codecName == "" {
			codecName = "raw"
		}
		if over, ok := opts.PerVar[v.Name]; ok {
			codecName = over
		}
		payload, err := f.encodeVar(v, codecName)
		if err != nil {
			return err
		}
		writeString(bw, v.Name)
		bw.WriteByte(byte(v.Type))
		writeUvarint(bw, uint64(len(v.Dims)))
		for _, d := range v.Dims {
			writeUvarint(bw, uint64(d))
		}
		writeAttrs(bw, v.Attrs)
		fillFlag := byte(0)
		if v.HasFill {
			fillFlag = 1
		}
		bw.WriteByte(fillFlag)
		var fb [4]byte
		binary.LittleEndian.PutUint32(fb[:], math.Float32bits(v.Fill))
		bw.Write(fb[:])
		writeString(bw, codecName)
		writeUvarint(bw, uint64(len(payload)))
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeVar compresses one variable's data with the named codec.
func (f *File) encodeVar(v *Variable, codecName string) ([]byte, error) {
	if v.Type == Float64 {
		return f.encodeVar64(v, codecName)
	}
	data := v.data
	if data == nil {
		// Round-tripping a file that was read from disk: decode first.
		var err error
		data, err = f.decodeVar(v)
		if err != nil {
			return nil, err
		}
	}
	shape := f.shapeOf(v)
	if codecName == "raw" {
		out := compress.PutHeader(nil, compress.Header{CodecID: compress.IDRaw, Shape: shape})
		var b [4]byte
		for _, x := range data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(x))
			out = append(out, b[:]...)
		}
		return out, nil
	}
	codec, err := compress.New(codecName)
	if err != nil {
		return nil, fmt.Errorf("cdf: variable %s: %w", v.Name, err)
	}
	if v.HasFill {
		codec = compress.WithFill(codec, v.Fill)
	}
	return codec.Compress(data, shape)
}

// encodeVar64 compresses a double-precision variable. "raw" stores 8-byte
// values; any registered codec implementing compress.Codec64 (fpzip64-*,
// apax-*) is accepted; fill values are not supported on the 64-bit path.
func (f *File) encodeVar64(v *Variable, codecName string) ([]byte, error) {
	data := v.data64
	if data == nil {
		var err error
		data, err = f.decodeVar64(v)
		if err != nil {
			return nil, err
		}
	}
	if v.HasFill {
		return nil, fmt.Errorf("cdf: variable %s: fill values are not supported for Float64 variables", v.Name)
	}
	shape := f.shapeOf(v)
	if codecName == "raw" {
		out := compress.PutHeader(nil, compress.Header{CodecID: compress.IDRaw64, Shape: shape})
		var b [8]byte
		for _, x := range data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			out = append(out, b[:]...)
		}
		return out, nil
	}
	c, err := compress.New(codecName)
	if err != nil {
		return nil, fmt.Errorf("cdf: variable %s: %w", v.Name, err)
	}
	c64, ok := c.(compress.Codec64)
	if !ok {
		return nil, fmt.Errorf("cdf: variable %s: codec %s has no 64-bit mode", v.Name, codecName)
	}
	return c64.Compress64(data, shape)
}

// WriteFile writes the dataset to a file path.
func (f *File) WriteFile(path string, opts WriteOptions) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(fh, opts); err != nil {
		//lint:errdrop best-effort cleanup of an already-failed write; the Write error is what the caller sees
		fh.Close()
		return err
	}
	return fh.Close()
}

// Read parses a dataset. Variable payloads stay compressed until ReadVar.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, errors.New("cdf: bad magic")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("cdf: unsupported version %d", ver)
	}
	f := New()
	if f.Attrs, err = readAttrs(br); err != nil {
		return nil, err
	}
	ndims, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ndims; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		n, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		f.Dims = append(f.Dims, Dim{Name: name, Len: int(n)})
	}
	nvars, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nvars; i++ {
		var v Variable
		if v.Name, err = readString(br); err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if tb > 1 {
			return nil, fmt.Errorf("cdf: variable %s has unknown type %d", v.Name, tb)
		}
		v.Type = DataType(tb)
		nd, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nd; j++ {
			d, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			if int(d) >= len(f.Dims) {
				return nil, fmt.Errorf("cdf: variable %s references unknown dimension %d", v.Name, d)
			}
			v.Dims = append(v.Dims, int(d))
		}
		if v.Attrs, err = readAttrs(br); err != nil {
			return nil, err
		}
		fillFlag, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		v.HasFill = fillFlag != 0
		var fb [4]byte
		if _, err := io.ReadFull(br, fb[:]); err != nil {
			return nil, err
		}
		v.Fill = math.Float32frombits(binary.LittleEndian.Uint32(fb[:]))
		if v.Codec, err = readString(br); err != nil {
			return nil, err
		}
		plen, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if plen > 1<<32 {
			return nil, fmt.Errorf("cdf: payload of %s implausibly large", v.Name)
		}
		v.payload = make([]byte, plen)
		if _, err := io.ReadFull(br, v.payload); err != nil {
			return nil, err
		}
		f.Vars = append(f.Vars, v)
	}
	return f, nil
}

// Open reads a dataset from a file path.
func Open(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:errdrop read side; a Close error cannot lose data
	defer fh.Close()
	return Read(fh)
}

// ReadVar decompresses and returns a Float32 variable's values. Use
// ReadVar64 for Float64 variables.
func (f *File) ReadVar(name string) ([]float32, error) {
	v, ok := f.Var(name)
	if !ok {
		return nil, fmt.Errorf("cdf: no variable %q", name)
	}
	if v.Type == Float64 {
		return nil, fmt.Errorf("cdf: variable %s is Float64; use ReadVar64", name)
	}
	return f.decodeVar(v)
}

// ReadVar64 decompresses and returns a Float64 variable's values.
func (f *File) ReadVar64(name string) ([]float64, error) {
	v, ok := f.Var(name)
	if !ok {
		return nil, fmt.Errorf("cdf: no variable %q", name)
	}
	if v.Type != Float64 {
		return nil, fmt.Errorf("cdf: variable %s is Float32; use ReadVar", name)
	}
	return f.decodeVar64(v)
}

func (f *File) decodeVar64(v *Variable) ([]float64, error) {
	if v.payload == nil {
		if v.data64 != nil {
			return append([]float64(nil), v.data64...), nil
		}
		return nil, fmt.Errorf("cdf: variable %s has no data", v.Name)
	}
	h, rest, err := compress.ParseHeader(v.payload)
	if err != nil {
		return nil, err
	}
	if h.CodecID == compress.IDRaw64 {
		n := h.Shape.Len()
		if len(rest) < 8*n {
			return nil, fmt.Errorf("%w: truncated raw64 payload", compress.ErrCorrupt)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return out, nil
	}
	c, err := compress.New(v.Codec)
	if err != nil {
		return nil, fmt.Errorf("cdf: variable %s: %w", v.Name, err)
	}
	c64, ok := c.(compress.Codec64)
	if !ok {
		return nil, fmt.Errorf("cdf: variable %s: codec %s has no 64-bit mode", v.Name, v.Codec)
	}
	return c64.Decompress64(v.payload)
}

func (f *File) decodeVar(v *Variable) ([]float32, error) {
	if v.payload == nil {
		if v.data != nil {
			return append([]float32(nil), v.data...), nil
		}
		return nil, fmt.Errorf("cdf: variable %s has no data", v.Name)
	}
	h, rest, err := compress.ParseHeader(v.payload)
	if err != nil {
		return nil, err
	}
	if h.CodecID == compress.IDRaw {
		n := h.Shape.Len()
		if len(rest) < 4*n {
			return nil, fmt.Errorf("%w: truncated raw payload", compress.ErrCorrupt)
		}
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		return out, nil
	}
	codec, err := compress.New(v.Codec)
	if err != nil {
		return nil, fmt.Errorf("cdf: variable %s: %w", v.Name, err)
	}
	if v.HasFill {
		codec = compress.WithFill(codec, v.Fill)
	}
	return codec.Decompress(v.payload)
}

// PayloadSize returns the stored (compressed) byte count of a variable,
// for computing achieved compression ratios from files on disk.
func (f *File) PayloadSize(name string) (int, bool) {
	v, ok := f.Var(name)
	if !ok {
		return 0, false
	}
	return len(v.payload), true
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", errors.New("cdf: string too long")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeAttrs(w *bufio.Writer, attrs []Attr) {
	writeUvarint(w, uint64(len(attrs)))
	for _, a := range attrs {
		writeString(w, a.Name)
		writeString(w, a.Value)
	}
}

func readAttrs(r *bufio.Reader) ([]Attr, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxStringLen {
		return nil, errors.New("cdf: too many attributes")
	}
	attrs := make([]Attr, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		val, err := readString(r)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attr{Name: name, Value: val})
	}
	return attrs, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}
