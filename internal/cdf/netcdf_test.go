package cdf

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestNetCDFExportImportRoundTrip(t *testing.T) {
	f := buildTestFile(t)
	var buf bytes.Buffer
	if err := f.ExportNetCDF(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ImportNetCDF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Dims) != len(f.Dims) || len(g.Vars) != len(f.Vars) || len(g.Attrs) != len(f.Attrs) {
		t.Fatalf("structure lost: %d dims %d vars %d attrs", len(g.Dims), len(g.Vars), len(g.Attrs))
	}
	for i, d := range f.Dims {
		if g.Dims[i] != d {
			t.Fatalf("dim %d mismatch: %+v vs %+v", i, g.Dims[i], d)
		}
	}
	for _, name := range f.VarNames() {
		want, _ := f.ReadVar(name)
		got, err := g.ReadVar(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("%s: mismatch at %d: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
	// Fill metadata travels via _FillValue.
	v, _ := g.Var("SST")
	if !v.HasFill || v.Fill != 1e35 {
		t.Fatalf("fill metadata lost: %+v", v)
	}
	// Units attributes preserved.
	tv, _ := g.Var("T")
	if len(tv.Attrs) == 0 || tv.Attrs[0].Name != "units" || tv.Attrs[0].Value != "K" {
		t.Fatalf("attributes lost: %+v", tv.Attrs)
	}
}

func TestNetCDFExportFloat64(t *testing.T) {
	f := New()
	d := f.AddDim("n", 3)
	if _, err := f.AddVar64("X", []int{d}, []float64{1.5, math.Pi, -2e300}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.ExportNetCDF(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ImportNetCDF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadVar64("X")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, math.Pi, -2e300}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestNetCDFWellFormedHeader(t *testing.T) {
	// Spot-check the on-disk layout against the classic-format spec.
	f := New()
	lat := f.AddDim("lat", 4)
	if _, err := f.AddVar("v", []int{lat}, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.ExportNetCDF(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if string(b[:4]) != "CDF\x01" {
		t.Fatalf("magic = %q", b[:4])
	}
	if binary.BigEndian.Uint32(b[4:]) != 0 {
		t.Fatal("numrecs must be 0")
	}
	if binary.BigEndian.Uint32(b[8:]) != ncDimension {
		t.Fatal("dimension list tag missing")
	}
	if binary.BigEndian.Uint32(b[12:]) != 1 {
		t.Fatal("dimension count wrong")
	}
	// Data offsets are 4-byte aligned and values big-endian.
	want := []float32{1, 2, 3, 4}
	data := b[len(b)-16:]
	for i, w := range want {
		if got := math.Float32frombits(binary.BigEndian.Uint32(data[4*i:])); got != w {
			t.Fatalf("data[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestNetCDFImportRejectsJunk(t *testing.T) {
	if _, err := ImportNetCDF(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := ImportNetCDF(bytes.NewReader([]byte("CDF\x01\x00\x00"))); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Record dimensions unsupported.
	var rec bytes.Buffer
	rec.WriteString("CDF\x01")
	var u [4]byte
	binary.BigEndian.PutUint32(u[:], 5)
	rec.Write(u[:])
	if _, err := ImportNetCDF(bytes.NewReader(rec.Bytes())); err == nil {
		t.Fatal("record dimension accepted")
	}
}

func TestNetCDFExportOfCompressedDataset(t *testing.T) {
	// Export must transparently decompress stored payloads.
	f := buildTestFile(t)
	var comp bytes.Buffer
	if err := f.Write(&comp, WriteOptions{Codec: "fpzip-32"}); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&comp)
	if err != nil {
		t.Fatal(err)
	}
	var nc bytes.Buffer
	if err := g.ExportNetCDF(&nc); err != nil {
		t.Fatal(err)
	}
	h, err := ImportNetCDF(bytes.NewReader(nc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.ReadVar("T")
	got, err := h.ReadVar("T")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}
