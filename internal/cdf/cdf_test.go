package cdf

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
)

func buildTestFile(t *testing.T) *File {
	t.Helper()
	f := New()
	f.GlobalAttr("source", "CAM5 synthetic")
	f.GlobalAttr("case", "unit-test")
	lev := f.AddDim("lev", 3)
	lat := f.AddDim("lat", 8)
	lon := f.AddDim("lon", 16)

	t3 := make([]float32, 3*8*16)
	for i := range t3 {
		t3[i] = 250 + float32(i%40)
	}
	if _, err := f.AddVar("T", []int{lev, lat, lon}, t3, Attr{"units", "K"}); err != nil {
		t.Fatal(err)
	}
	ts := make([]float32, 8*16)
	for i := range ts {
		ts[i] = 288 + float32(i%10)
	}
	if _, err := f.AddVar("TS", []int{lat, lon}, ts, Attr{"units", "K"}); err != nil {
		t.Fatal(err)
	}
	sst := make([]float32, 8*16)
	for i := range sst {
		if i%5 == 0 {
			sst[i] = 1e35
		} else {
			sst[i] = 290 + float32(i%7)
		}
	}
	v, err := f.AddVar("SST", []int{lat, lon}, sst, Attr{"units", "K"})
	if err != nil {
		t.Fatal(err)
	}
	v.HasFill = true
	v.Fill = 1e35
	return f
}

func TestRoundTripRaw(t *testing.T) {
	f := buildTestFile(t)
	var buf bytes.Buffer
	if err := f.Write(&buf, WriteOptions{Codec: "raw"}); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Vars) != 3 || len(g.Dims) != 3 || len(g.Attrs) != 2 {
		t.Fatalf("structure lost: %d vars %d dims %d attrs", len(g.Vars), len(g.Dims), len(g.Attrs))
	}
	want, _ := f.ReadVar("T")
	got, err := g.ReadVar("T")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("T mismatch at %d", i)
		}
	}
}

func TestRoundTripCompressed(t *testing.T) {
	f := buildTestFile(t)
	var buf bytes.Buffer
	err := f.Write(&buf, WriteOptions{
		Codec:  "nc",
		PerVar: map[string]string{"T": "fpzip-32"},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"T", "TS", "SST"} {
		want, _ := f.ReadVar(name)
		got, err := g.ReadVar(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s mismatch at %d: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
	v, _ := g.Var("T")
	if v.Codec != "fpzip-32" {
		t.Fatalf("per-var codec not recorded: %q", v.Codec)
	}
}

func TestFillSurvivesLossyCodec(t *testing.T) {
	f := buildTestFile(t)
	var buf bytes.Buffer
	if err := f.Write(&buf, WriteOptions{Codec: "apax-4"}); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := f.ReadVar("SST")
	got, err := g.ReadVar("SST")
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i] == 1e35 {
			if got[i] != 1e35 {
				t.Fatalf("fill lost at %d", i)
			}
		} else if math.Abs(float64(got[i]-orig[i])) > 5 {
			// apax-4 on values ~300 quantizes with step 2^(e-126-k) ≈ 8.
			t.Fatalf("SST error too large at %d: %v vs %v", i, got[i], orig[i])
		}
	}
}

func TestWriteFileOpen(t *testing.T) {
	f := buildTestFile(t)
	path := filepath.Join(t.TempDir(), "test.cdf")
	if err := f.WriteFile(path, WriteOptions{Codec: "nc"}); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	names := g.VarNames()
	if len(names) != 3 || names[0] != "T" {
		t.Fatalf("names = %v", names)
	}
	if _, ok := g.PayloadSize("T"); !ok {
		t.Fatal("PayloadSize missing for T")
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	f := New()
	lat := f.AddDim("lat", 64)
	lon := f.AddDim("lon", 64)
	data := make([]float32, 64*64)
	for i := range data {
		data[i] = float32(100 + i%3)
	}
	if _, err := f.AddVar("X", []int{lat, lon}, data); err != nil {
		t.Fatal(err)
	}
	var raw, comp bytes.Buffer
	if err := f.Write(&raw, WriteOptions{Codec: "raw"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(&comp, WriteOptions{Codec: "nc"}); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= raw.Len()/2 {
		t.Fatalf("compression ineffective: raw %d, nc %d", raw.Len(), comp.Len())
	}
}

func TestAddVarValidation(t *testing.T) {
	f := New()
	lat := f.AddDim("lat", 4)
	if _, err := f.AddVar("bad", []int{lat}, make([]float32, 5)); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := f.AddVar("bad2", []int{99}, make([]float32, 4)); err == nil {
		t.Fatal("unknown dimension should error")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("JUNKJUNK"))); err == nil {
		t.Fatal("bad magic should error")
	}
	f := buildTestFile(t)
	var buf bytes.Buffer
	if err := f.Write(&buf, WriteOptions{Codec: "raw"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("truncated file should error")
	}
	g, _ := Read(bytes.NewReader(full))
	if _, err := g.ReadVar("NOPE"); err == nil {
		t.Fatal("unknown variable should error")
	}
}

func TestUnknownCodecOnWrite(t *testing.T) {
	f := buildTestFile(t)
	var buf bytes.Buffer
	if err := f.Write(&buf, WriteOptions{Codec: "not-a-codec"}); err == nil {
		t.Fatal("unknown codec should error at write time")
	}
}

func TestRewriteReadFile(t *testing.T) {
	// Read a file, rewrite it with a different codec, verify contents.
	f := buildTestFile(t)
	var a bytes.Buffer
	if err := f.Write(&a, WriteOptions{Codec: "nc"}); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&a)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := g.Write(&b, WriteOptions{Codec: "fpzip-32"}); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.ReadVar("TS")
	got, err := h.ReadVar("TS")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("rewrite corrupted TS at %d", i)
		}
	}
}

func TestFloat64VariableRoundTrip(t *testing.T) {
	f := New()
	lat := f.AddDim("lat", 8)
	lon := f.AddDim("lon", 16)
	data := make([]float64, 8*16)
	for i := range data {
		data[i] = 300.123456789 + float64(i)*1e-7 // needs full precision
	}
	if _, err := f.AddVar64("TREST", []int{lat, lon}, data, Attr{"units", "K"}); err != nil {
		t.Fatal(err)
	}
	for _, codec := range []string{"raw", "fpzip64-64", "apax-2"} {
		var buf bytes.Buffer
		if err := f.Write(&buf, WriteOptions{Codec: codec}); err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		g, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		v, ok := g.Var("TREST")
		if !ok || v.Type != Float64 {
			t.Fatalf("%s: type metadata lost", codec)
		}
		got, err := g.ReadVar64("TREST")
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		for i := range data {
			e := got[i] - data[i]
			if e < 0 {
				e = -e
			}
			lossless := codec == "raw" || codec == "fpzip64-64"
			if lossless && got[i] != data[i] {
				t.Fatalf("%s: not lossless at %d: %v vs %v", codec, i, got[i], data[i])
			}
			if e > 1e-5 {
				t.Fatalf("%s: error %v at %d", codec, e, i)
			}
		}
		// The float32 accessor must refuse.
		if _, err := g.ReadVar("TREST"); err == nil {
			t.Fatalf("%s: ReadVar should refuse Float64 variables", codec)
		}
	}
}

func TestFloat64RejectsNon64Codec(t *testing.T) {
	f := New()
	d := f.AddDim("n", 4)
	if _, err := f.AddVar64("X", []int{d}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf, WriteOptions{Codec: "isa-0.5"}); err == nil {
		t.Fatal("ISABELA has no 64-bit mode and should be rejected for Float64 data")
	}
}

func TestFloat64FillRejected(t *testing.T) {
	f := New()
	d := f.AddDim("n", 2)
	v, err := f.AddVar64("X", []int{d}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	v.HasFill = true
	var buf bytes.Buffer
	if err := f.Write(&buf, WriteOptions{Codec: "fpzip64-64"}); err == nil {
		t.Fatal("fill on Float64 variables should be rejected")
	}
}

func TestReadVar64OnFloat32(t *testing.T) {
	f := buildTestFile(t)
	if _, err := f.ReadVar64("T"); err == nil {
		t.Fatal("ReadVar64 should refuse Float32 variables")
	}
}

func TestShapeOfVariants(t *testing.T) {
	f := New()
	a := f.AddDim("a", 2)
	b := f.AddDim("b", 3)
	c := f.AddDim("c", 5)
	v1, _ := f.AddVar("v1", []int{c}, make([]float32, 5))
	v2, _ := f.AddVar("v2", []int{b, c}, make([]float32, 15))
	v3, _ := f.AddVar("v3", []int{a, b, c}, make([]float32, 30))
	if s := f.shapeOf(v1); s != (compress.Shape{NLev: 1, NLat: 1, NLon: 5}) {
		t.Fatalf("1-D shape %+v", s)
	}
	if s := f.shapeOf(v2); s != (compress.Shape{NLev: 1, NLat: 3, NLon: 5}) {
		t.Fatalf("2-D shape %+v", s)
	}
	if s := f.shapeOf(v3); s != (compress.Shape{NLev: 2, NLat: 3, NLon: 5}) {
		t.Fatalf("3-D shape %+v", s)
	}
}
