// Top-level benchmark harness: one benchmark per table and figure of the
// paper (each regenerates the corresponding result on a reduced grid and
// reports wall-clock cost), plus ablation benchmarks for the design
// choices called out in DESIGN.md §5. Codec-level throughput benchmarks
// live next to each codec implementation.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package climcompress

import (
	"math"
	"strconv"
	"sync"
	"testing"

	"climcompress/internal/compress"
	"climcompress/internal/compress/apax"
	"climcompress/internal/compress/fpzip"
	"climcompress/internal/compress/grib2"
	"climcompress/internal/compress/isabela"
	"climcompress/internal/compress/nclossless"
	"climcompress/internal/ensemble"
	"climcompress/internal/experiments"
	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/stats"
	"climcompress/internal/varcatalog"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// benchConfig builds one small shared runner: test grid, 7 members, six
// representative variables. Every table/figure benchmark reuses it so the
// substrate is integrated once.
func sharedBenchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig(grid.Test())
		cfg.Members = 7
		cfg.L96 = l96.EnsembleConfig{
			Members: 7, Dt: 0.002, SpinupSteps: 1000,
			DivergeSteps: 6000, CalibSteps: 3000, Eps: 1e-14,
		}
		cfg.Variables = []string{"U", "FSDSC", "Z3", "CCN3", "T", "SST"}
		benchRunner = experiments.NewRunner(cfg, nil)
	})
	return benchRunner
}

func benchExperiment(b *testing.B, fn func() (string, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table 1")
		}
	}
}

func BenchmarkTable2Characteristics(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Table2)
}

func BenchmarkTable3NRMSE(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Table3)
}

func BenchmarkTable4Enmax(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Table4)
}

func BenchmarkTable5Timings(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Table5)
}

func BenchmarkTable6Passes(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Table6)
}

func BenchmarkTable7Hybrid(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Table7)
}

func BenchmarkTable8Composition(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Table8)
}

func BenchmarkFigure1Boxplots(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Fig1)
}

func BenchmarkFigure2RMSZ(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Fig2)
}

func BenchmarkFigure3Enmax(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Fig3)
}

func BenchmarkFigure4Bias(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.Fig4)
}

func BenchmarkSSIMExtension(b *testing.B) {
	r := sharedBenchRunner(b)
	benchExperiment(b, r.SSIMReport)
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §5)
// ---------------------------------------------------------------------------

var (
	benchFieldOnce  sync.Once
	benchFieldData  []float32
	benchFieldShape compress.Shape
)

// benchField synthesizes a realistic 3-D field for the codec ablations
// (built once per test binary).
func benchField(b *testing.B) ([]float32, compress.Shape) {
	b.Helper()
	benchFieldOnce.Do(func() {
		g := grid.Small()
		ens := l96.NewEnsemble(l96.DefaultParams(), l96.EnsembleConfig{
			Members: 3, Dt: 0.002, SpinupSteps: 1000,
			DivergeSteps: 4000, CalibSteps: 2000, Eps: 1e-14,
		})
		catalog := varcatalog.Default()
		gen := model.NewGenerator(g, catalog, ens)
		_, idx, _ := varcatalog.ByName(catalog, "U")
		f := gen.Field(idx, 0)
		benchFieldData = f.Data
		benchFieldShape = compress.Shape{NLev: f.NLev, NLat: g.NLat, NLon: g.NLon}
	})
	b.ResetTimer()
	return benchFieldData, benchFieldShape
}

// reportCR attaches the achieved compression ratio to the benchmark output.
func reportCR(b *testing.B, compressed, n int) {
	b.ReportMetric(compress.Ratio(compressed, n), "CR")
}

// Ablation: the HDF5-style shuffle filter in the NetCDF-4 lossless baseline.
func BenchmarkAblationShuffleOn(b *testing.B) {
	data, shape := benchField(b)
	c := &nclossless.Codec{Shuffle: true}
	b.SetBytes(int64(4 * len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out, _ = c.Compress(data, shape)
	}
	reportCR(b, len(out), len(data))
}

func BenchmarkAblationShuffleOff(b *testing.B) {
	data, shape := benchField(b)
	c := &nclossless.Codec{Shuffle: false}
	b.SetBytes(int64(4 * len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out, _ = c.Compress(data, shape)
	}
	reportCR(b, len(out), len(data))
}

// Ablation: fpzip's 2-D Lorenzo predictor vs previous-value prediction.
func BenchmarkAblationFPZipLorenzo(b *testing.B) {
	data, shape := benchField(b)
	c := &fpzip.Codec{Bits: 24, Predictor: fpzip.Lorenzo2D}
	b.SetBytes(int64(4 * len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out, _ = c.Compress(data, shape)
	}
	reportCR(b, len(out), len(data))
}

func BenchmarkAblationFPZipPrevious(b *testing.B) {
	data, shape := benchField(b)
	c := &fpzip.Codec{Bits: 24, Predictor: fpzip.Previous}
	b.SetBytes(int64(4 * len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out, _ = c.Compress(data, shape)
	}
	reportCR(b, len(out), len(data))
}

// Ablation: ISABELA window size (the paper uses the authors' 1024).
func BenchmarkAblationISABELAWindow(b *testing.B) {
	data, shape := benchField(b)
	for _, w := range []int{256, 1024, 4096} {
		w := w
		b.Run(nameInt("window", w), func(b *testing.B) {
			c := &isabela.Codec{RelErr: 0.5, Window: w}
			b.SetBytes(int64(4 * len(data)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out, _ = c.Compress(data, shape)
			}
			reportCR(b, len(out), len(data))
		})
	}
}

// Ablation: APAX block size.
func BenchmarkAblationAPAXBlock(b *testing.B) {
	data, shape := benchField(b)
	for _, blk := range []int{32, 64, 128} {
		blk := blk
		b.Run(nameInt("block", blk), func(b *testing.B) {
			c := &apax.Codec{Rate: 4, Block: blk}
			b.SetBytes(int64(4 * len(data)))
			var maxErr float64
			for i := 0; i < b.N; i++ {
				buf, _ := c.Compress(data, shape)
				recon, _ := c.Decompress(buf)
				maxErr = 0
				for j := range data {
					if e := math.Abs(float64(recon[j] - data[j])); e > maxErr {
						maxErr = e
					}
				}
			}
			b.ReportMetric(maxErr, "e_max")
		})
	}
}

// Ablation: GRIB2's JPEG2000-style wavelet path vs simple (template 5.0)
// fixed-width packing.
func BenchmarkAblationGRIB2Packing(b *testing.B) {
	data, shape := benchField(b)
	for _, cfg := range []struct {
		name  string
		codec compress.Codec
	}{
		{"jpeg2000", &grib2.Codec{D: 2}},
		{"simple", &grib2.Codec{D: 2, Packing: grib2.Simple}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(4 * len(data)))
			var out []byte
			for i := 0; i < b.N; i++ {
				var err error
				out, err = cfg.codec.Compress(data, shape)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCR(b, len(out), len(data))
		})
	}
}

// Ablation: fpzip predictor order (previous-value, 2-D, 3-D Lorenzo).
func BenchmarkAblationFPZipLorenzo3D(b *testing.B) {
	data, shape := benchField(b)
	c := &fpzip.Codec{Bits: 24, Predictor: fpzip.Lorenzo3D}
	b.SetBytes(int64(4 * len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out, _ = c.Compress(data, shape)
	}
	reportCR(b, len(out), len(data))
}

// Ablation: leave-one-out aggregates vs naive per-member recomputation of
// the RMSZ distribution (O(M·N) vs O(M²·N)).
func benchEnsembleFields(b *testing.B, nm int) []*field.Field {
	b.Helper()
	g := grid.Test()
	fields := make([]*field.Field, nm)
	x := uint64(99)
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%10000)/5000 - 1
	}
	for m := range fields {
		f := field.New("X", "1", g, false)
		for i := range f.Data {
			f.Data[i] = float32(10 + float64(i%7) + next())
		}
		fields[m] = f
	}
	return fields
}

func BenchmarkAblationRMSZLeaveOneOut(b *testing.B) {
	fields := benchEnsembleFields(b, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ensemble.Build(fields); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRMSZNaive(b *testing.B) {
	fields := benchEnsembleFields(b, 31)
	n := fields[0].Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Naive: for each member, recompute the sub-ensemble mean/std from
		// scratch at every point.
		for m := range fields {
			var sum float64
			var cnt int
			for p := 0; p < n; p++ {
				var w stats.Welford
				for o := range fields {
					if o == m {
						continue
					}
					w.Add(float64(fields[o].Data[p]))
				}
				std := w.StdDev()
				if std == 0 || math.IsNaN(std) {
					continue
				}
				z := (float64(fields[m].Data[p]) - w.Mean()) / std
				sum += z * z
				cnt++
			}
			if cnt == 0 {
				b.Fatal("no valid points")
			}
			_ = math.Sqrt(sum / float64(cnt))
		}
	}
}

func nameInt(prefix string, v int) string {
	return prefix + "_" + strconv.Itoa(v)
}
