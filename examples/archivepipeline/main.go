// Archivepipeline: the paper's target workflow (§1). CESM writes
// "history files" — one file per time slice containing every variable.
// The post-processing step converts them into per-variable time-series
// files, and that conversion is where the paper proposes integrating
// compression. This example simulates a season of monthly history files,
// converts them to compressed per-variable time series with a per-variable
// codec assignment, and reports the storage saved.
//
//	go run ./examples/archivepipeline [-slices 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"climcompress/internal/cdf"
	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	_ "climcompress/internal/compress/tsblob"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
)

func main() {
	slices := flag.Int("slices", 4, "number of monthly time slices")
	flag.Parse()

	dir, err := os.MkdirTemp("", "archivepipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	g := grid.Small()
	varNames := []string{"U", "T", "FSDSC", "Z3", "CCN3", "PS", "SST"}
	catalog := varcatalog.Default()
	var subset []varcatalog.Spec
	for _, s := range catalog {
		for _, n := range varNames {
			if s.Name == n {
				subset = append(subset, s)
			}
		}
	}
	// One simulation, sampled at *slices temporally correlated instants
	// (successive history-file time slices of the same run).
	cfg := l96.DefaultEnsembleConfig(1)
	cfg.TimeSlices = *slices
	cfg.SliceSteps = 250
	ens := l96.NewEnsemble(l96.DefaultParams(), cfg)
	gen := model.NewGenerator(g, subset, ens)

	// Step 1: write raw (uncompressed) time-slice history files.
	fmt.Printf("Writing %d monthly history files (%d variables, grid %s)...\n", *slices, len(subset), g.Name)
	var historyBytes int64
	for ts := 0; ts < *slices; ts++ {
		f := cdf.New()
		f.GlobalAttr("time", fmt.Sprintf("month %d", ts))
		lev := f.AddDim("lev", g.NLev)
		lat := f.AddDim("lat", g.NLat)
		lon := f.AddDim("lon", g.NLon)
		for idx, spec := range subset {
			fl := gen.FieldAt(idx, 0, ts)
			dims := []int{lat, lon}
			if spec.ThreeD {
				dims = []int{lev, lat, lon}
			}
			v, err := f.AddVar(spec.Name, dims, fl.Data, cdf.Attr{Name: "units", Value: spec.Units})
			if err != nil {
				log.Fatal(err)
			}
			if fl.HasFill {
				v.HasFill = true
				v.Fill = fl.Fill
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("history_%02d.cdf", ts))
		if err := f.WriteFile(path, cdf.WriteOptions{Codec: "raw"}); err != nil {
			log.Fatal(err)
		}
		st, _ := os.Stat(path)
		historyBytes += st.Size()
	}

	// Step 2: per-variable codec assignment — the hybrid idea of §5.4.
	codecFor := map[string]string{
		"U": "fpzip-16", "T": "fpzip-16", "FSDSC": "fpzip-24",
		"Z3": "fpzip-24", "CCN3": "fpzip-24", "PS": "fpzip-16", "SST": "fpzip-24",
	}

	// Step 3: convert time slices to compressed per-variable time series.
	fmt.Println("Converting to compressed per-variable time-series files...")
	var seriesBytes int64
	t := &report.Table{
		Headers: []string{"variable", "codec", "series bytes", "CR"},
	}
	for _, spec := range subset {
		out := cdf.New()
		out.GlobalAttr("variable", spec.Name)
		timeDim := out.AddDim("time", *slices)
		lev := out.AddDim("lev", g.NLev)
		lat := out.AddDim("lat", g.NLat)
		lon := out.AddDim("lon", g.NLon)
		var series []float32
		var hasFill bool
		var fill float32
		for ts := 0; ts < *slices; ts++ {
			path := filepath.Join(dir, fmt.Sprintf("history_%02d.cdf", ts))
			h, err := cdf.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			data, err := h.ReadVar(spec.Name)
			if err != nil {
				log.Fatal(err)
			}
			v, _ := h.Var(spec.Name)
			hasFill, fill = v.HasFill, v.Fill
			series = append(series, data...)
		}
		dims := []int{timeDim, lat, lon}
		if spec.ThreeD {
			dims = []int{timeDim, lev, lat, lon}
		}
		v, err := out.AddVar(spec.Name, dims, series, cdf.Attr{Name: "units", Value: spec.Units})
		if err != nil {
			log.Fatal(err)
		}
		v.HasFill, v.Fill = hasFill, fill
		path := filepath.Join(dir, fmt.Sprintf("series_%s.cdf", spec.Name))
		codec := codecFor[spec.Name]
		if err := out.WriteFile(path, cdf.WriteOptions{Codec: codec}); err != nil {
			log.Fatal(err)
		}
		st, _ := os.Stat(path)
		seriesBytes += st.Size()
		t.AddRow(spec.Name, codec, fmt.Sprint(st.Size()),
			report.Fix(compress.Ratio(int(st.Size()), len(series)), 3))
	}
	fmt.Print(t.String())
	fmt.Printf("\nhistory (raw):       %10d bytes\n", historyBytes)
	fmt.Printf("time series (comp.): %10d bytes\n", seriesBytes)
	fmt.Printf("overall ratio:       %10.3f (%.1f:1)\n",
		float64(seriesBytes)/float64(historyBytes), float64(historyBytes)/float64(seriesBytes))
}
