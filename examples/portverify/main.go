// Portverify: the CESM-PVT's original job (§4.3). After porting a climate
// model to a new machine (or changing compiler flags, or reordering
// parallel reductions) the results are no longer bit-for-bit. Are they
// climate-changing? Run a few simulations on the "new machine" and check
// them against the trusted ensemble: global means must show no range shift
// and RMSZ scores must fall within the ensemble's distribution.
//
// This example verifies two scenarios against a trusted ensemble:
//
//  1. a benign port — the same model started from different tiny
//     perturbations (bit-for-bit different, statistically identical);
//
//  2. a broken port — the model's forcing constant drifted (a genuinely
//     changed climate).
//
//     go run ./examples/portverify [-members 41]
package main

import (
	"flag"
	"fmt"
	"log"

	"climcompress/internal/ensemble"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/pvt"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
)

func main() {
	members := flag.Int("members", 41, "trusted ensemble size (paper: 101)")
	flag.Parse()

	g := grid.Small()
	catalog := varcatalog.Default()
	varNames := []string{"T", "U", "FSDSC"}

	fmt.Printf("Integrating the trusted %d-member ensemble...\n", *members)
	// Three extra members play the role of new-machine runs: same model,
	// different O(1e-14) perturbations.
	trustedCfg := l96.DefaultEnsembleConfig(*members + 3)
	trusted := l96.NewEnsemble(l96.DefaultParams(), trustedCfg)
	gen := model.NewGenerator(g, catalog, trusted)

	fmt.Println("Integrating the broken port (forcing constant drifted F=10 -> 13)...")
	brokenParams := l96.DefaultParams()
	brokenParams.F = 13
	broken := l96.NewEnsemble(brokenParams, l96.DefaultEnsembleConfig(3))
	// The anomaly projection keeps the trusted calibration: a different
	// attractor then shows up as biased mode weights, exactly like a model
	// whose climate drifted.
	broken.MeanX, broken.StdX = trusted.MeanX, trusted.StdX
	brokenGen := model.NewGenerator(g, catalog, broken)

	for _, name := range varNames {
		_, idx, ok := varcatalog.ByName(catalog, name)
		if !ok {
			log.Fatalf("unknown variable %q", name)
		}
		// Trusted ensemble statistics from the first *members runs.
		fields := ensemble.CollectFields(gen, idx)[:*members]
		vs, err := ensemble.Build(fields)
		if err != nil {
			log.Fatal(err)
		}

		benign := make([][]float32, 3)
		for i := range benign {
			benign[i] = gen.Field(idx, *members+i).Data
		}
		bad := make([][]float32, 3)
		for i := range bad {
			bad[i] = brokenGen.Field(idx, i).Data
		}

		resGood, err := pvt.PortVerify(vs, benign)
		if err != nil {
			log.Fatal(err)
		}
		resBad, err := pvt.PortVerify(vs, bad)
		if err != nil {
			log.Fatal(err)
		}

		t := &report.Table{
			Title:   fmt.Sprintf("Port verification: %s (trusted RMSZ in [%.3f, %.3f])", name, resGood.RMSZBox.Min, resGood.RMSZBox.Max),
			Headers: []string{"scenario", "run", "RMSZ", "global mean", "RMSZ ok", "mean ok"},
		}
		addRuns := func(label string, res pvt.PortResult) {
			for i, run := range res.Runs {
				t.AddRow(label, fmt.Sprint(i),
					report.Fix(run.RMSZ, 3), report.Fix(run.GlobalMean, 4),
					pass(run.RMSZOK), pass(run.MeanOK))
			}
		}
		addRuns("benign port", resGood)
		addRuns("broken port", resBad)
		fmt.Print(t.String())
		fmt.Printf("verdict: benign=%s broken=%s\n\n", pass(resGood.Pass), pass(resBad.Pass))
	}
	fmt.Println("The benign port is statistically indistinguishable everywhere; the drifted")
	fmt.Println("forcing is caught on the climate-sensitive variables — as in the CESM-PVT,")
	fmt.Println("where pass/fail is judged per variable and some variables are more critical")
	fmt.Println("than others (§4.3).")
}

func pass(b bool) string {
	if b {
		return "pass"
	}
	return "FAIL"
}
