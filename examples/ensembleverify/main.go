// Ensembleverify: the full CESM-PVT-style verification of §4.3. An
// ensemble of simulations differing only by an O(1e-14) initial-condition
// perturbation is generated; candidate codecs are then accepted only if
// the reconstructed data is statistically indistinguishable from that
// natural variability — the paper's four tests: correlation, RMSZ
// closeness (eq. 8), E_nmax ratio (eq. 11) and regression bias (eq. 9).
//
//	go run ./examples/ensembleverify [-members 31] [-var FSDSC]
package main

import (
	"flag"
	"fmt"
	"log"

	"climcompress/internal/core"
	"climcompress/internal/ensemble"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
)

func main() {
	members := flag.Int("members", 31, "ensemble size (paper: 101)")
	varName := flag.String("var", "FSDSC", "variable to verify")
	flag.Parse()

	g := grid.Small()
	catalog := varcatalog.Default()
	fmt.Printf("Integrating %d-member perturbation ensemble (chaotic core + field synthesis)...\n", *members)
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.DefaultEnsembleConfig(*members))
	gen := model.NewGenerator(g, catalog, ens)
	_, idx, ok := varcatalog.ByName(catalog, *varName)
	if !ok {
		log.Fatalf("unknown variable %q", *varName)
	}
	fields := ensemble.CollectFields(gen, idx)

	suite, err := core.NewSuite(fields)
	if err != nil {
		log.Fatal(err)
	}
	rmsz := suite.RMSZ()
	lo, hi := rmsz[0], rmsz[0]
	for _, v := range rmsz {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Printf("%s: ensemble RMSZ distribution spans [%.3f, %.3f] over %d members\n\n",
		*varName, lo, hi, suite.Members())

	t := &report.Table{
		Title:   fmt.Sprintf("Verification verdicts for %s (all four §4.3 tests)", *varName),
		Headers: []string{"codec", "CR", "rho", "RMSZ", "E_nmax", "bias", "ALL"},
	}
	yn := func(b bool) string {
		if b {
			return "pass"
		}
		return "FAIL"
	}
	for _, name := range []string{"fpzip-32", "fpzip-24", "fpzip-16", "apax-2", "apax-4", "apax-5", "isa-0.1", "isa-1"} {
		codec, err := core.NewCodec(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := suite.Verify(codec)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(name, report.Fix(res.MeanCR, 3), yn(res.RhoPass), yn(res.RMSZPass),
			yn(res.EnmaxPass), yn(res.BiasPass), yn(res.AllPass))
	}
	fmt.Print(t.String())
	fmt.Println("\nA codec that passes ALL may replace the original data: the effect of")
	fmt.Println("compression is on par with an O(1e-14) perturbation of initial conditions.")
}
