// Hybridtuning: the paper's §5.4 per-variable customization. For each
// variable, walk a method family's variants from most to least aggressive
// and keep the first that passes all verification tests, falling back to
// lossless when none does. The result is a "hybrid" method whose average
// compression ratio beats any fixed variant at acceptable quality.
//
//	go run ./examples/hybridtuning [-members 21] [-family APAX]
package main

import (
	"flag"
	"fmt"
	"log"

	"climcompress/internal/compress"
	"climcompress/internal/core"
	"climcompress/internal/ensemble"
	"climcompress/internal/grid"
	"climcompress/internal/hybrid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
)

func main() {
	members := flag.Int("members", 21, "ensemble size (paper: 101)")
	famName := flag.String("family", "APAX", "method family: GRIB2|ISABELA|fpzip|APAX")
	flag.Parse()

	var fam hybrid.Family
	found := false
	for _, f := range hybrid.StudyFamilies() {
		if f.Name == *famName {
			fam, found = f, true
		}
	}
	if !found {
		log.Fatalf("unknown family %q", *famName)
	}

	// A representative spread of variables: smooth, huge-range, log-scale,
	// masked, and noisy ones.
	varNames := []string{"U", "FSDSC", "Z3", "CCN3", "T", "PS", "SST", "Q", "SO2", "CLDTOT"}
	g := grid.Small()
	catalog := varcatalog.Default()
	fmt.Printf("Building %d-member verification ensemble...\n\n", *members)
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.DefaultEnsembleConfig(*members))
	gen := model.NewGenerator(g, catalog, ens)

	t := &report.Table{
		Title:   fmt.Sprintf("Hybrid construction for family %s (variants tried most aggressive first)", fam.Name),
		Headers: []string{"variable", "trail", "selected", "CR"},
	}
	var choices []hybrid.Choice
	for _, name := range varNames {
		_, idx, ok := varcatalog.ByName(catalog, name)
		if !ok {
			log.Fatalf("unknown variable %q", name)
		}
		fields := ensemble.CollectFields(gen, idx)
		suite, err := core.NewSuite(fields)
		if err != nil {
			log.Fatal(err)
		}
		outcomes := map[string]hybrid.Outcome{}
		trail := ""
		for _, variant := range fam.Variants {
			codec, err := core.NewCodec(variant)
			if err != nil {
				log.Fatal(err)
			}
			if fields[0].HasFill {
				codec = core.WrapFill(codec, fields[0].Fill)
			}
			res, err := suite.Verify(codec)
			if err != nil {
				log.Fatal(err)
			}
			outcomes[variant] = hybrid.Outcome{
				Pass: res.AllPass, CR: res.MeanCR,
				Rho: res.Checks[0].Errors.Pearson, NRMSE: res.Checks[0].Errors.NRMSE,
				Enmax: res.Checks[0].Errors.ENMax,
			}
			if res.AllPass {
				trail += variant + "(pass) "
				break
			}
			trail += variant + "(fail) "
		}
		// Lossless fallback CR if needed.
		fb, err := core.NewCodec(fam.Fallback)
		if err != nil {
			log.Fatal(err)
		}
		if fields[0].HasFill {
			fb = core.WrapFill(fb, fields[0].Fill)
		}
		shape := compress.Shape{NLev: fields[0].NLev, NLat: g.NLat, NLon: g.NLon}
		buf, err := fb.Compress(fields[0].Data, shape)
		if err != nil {
			log.Fatal(err)
		}
		fbOutcome := hybrid.Outcome{CR: float64(len(buf)) / float64(4*fields[0].Len()), Rho: 1}
		choice := hybrid.Select(name, fam, outcomes, fbOutcome)
		if choice.Fallback {
			trail += "-> lossless " + fam.Fallback
		}
		choices = append(choices, choice)
		t.AddRow(name, trail, choice.Variant, report.Fix(choice.Outcome.CR, 3))
	}
	fmt.Print(t.String())

	s := hybrid.Summarize(choices)
	fmt.Printf("\nHybrid %s over %d variables: avg CR %.3f (best %.3f, worst %.3f), avg rho %.7f\n",
		fam.Name, s.Variables, s.AvgCR, s.BestCR, s.WorstCR, s.AvgRho)
	comp := hybrid.Composition(choices)
	fmt.Printf("Composition: %v\n", comp)
}
