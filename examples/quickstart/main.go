// Quickstart: compress one synthetic climate field with several codecs and
// evaluate the reconstruction with the paper's §4.2 measures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"climcompress/internal/compress"
	"climcompress/internal/core"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
)

func main() {
	// Synthesize the zonal-wind field U of one simulation on a small grid.
	g := grid.Small()
	catalog := varcatalog.Default()
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.DefaultEnsembleConfig(3))
	gen := model.NewGenerator(g, catalog, ens)
	_, idx, _ := varcatalog.ByName(catalog, "U")
	f := gen.Field(idx, 0)
	s := f.Summarize()
	fmt.Printf("U on %s: min %.2f, max %.2f, mean %.2f, std %.2f (%d points)\n\n",
		g, s.Min, s.Max, s.Mean, s.Std, f.Len())

	shape := compress.Shape{NLev: f.NLev, NLat: g.NLat, NLon: g.NLon}
	t := &report.Table{
		Title:   "Original-vs-reconstructed measures (§4.2 of the paper)",
		Headers: []string{"codec", "CR", "e_nmax", "NRMSE", "rho", "rho >= .99999"},
	}
	for _, name := range []string{"nc", "fpzip-32", "fpzip-24", "fpzip-16", "apax-2", "apax-4", "isa-0.5"} {
		codec, err := core.NewCodec(name)
		if err != nil {
			log.Fatal(err)
		}
		buf, err := codec.Compress(f.Data, shape)
		if err != nil {
			log.Fatal(err)
		}
		recon, err := codec.Decompress(buf)
		if err != nil {
			log.Fatal(err)
		}
		e := core.Compare(f.Data, recon)
		pass := "yes"
		if !e.PassesCorrelation() {
			pass = "NO"
		}
		t.AddRow(name, report.Fix(compress.Ratio(len(buf), f.Len()), 3),
			report.Sci(e.ENMax), report.Sci(e.NRMSE), report.Fix(e.Pearson, 7), pass)
	}
	fmt.Print(t.String())
	fmt.Println("\nCR is compressed/original (eq. 1): smaller is better; 0.2 = the paper's 5:1 headline.")
}
