// Command ensemblegen generates and inspects the CESM-PVT-style
// perturbation ensemble: it can write all member history files of selected
// variables to disk, or print a variable's ensemble statistics (the RMSZ
// and E_nmax distributions of §4.3).
//
// Usage:
//
//	ensemblegen write -dir out/ [-grid small] [-members 101] [-vars U,FSDSC]
//	ensemblegen stats -var U [-grid small] [-members 101]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"climcompress/internal/cdf"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	_ "climcompress/internal/compress/tsblob"
	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/par"
	"climcompress/internal/pvt"
	"climcompress/internal/report"
	"climcompress/internal/stats"
	"climcompress/internal/varcatalog"
)

func main() {
	workers := flag.Int("workers", 0, "parallel worker pool width (0 = GOMAXPROCS)")
	flag.Usage = usage
	flag.Parse()
	par.SetWidth(*workers)
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	var err error
	switch args[0] {
	case "write":
		err = runWrite(args[1:])
	case "stats":
		err = runStats(args[1:])
	case "check":
		err = runCheck(args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ensemblegen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ensemblegen write -dir out/ [-grid small] [-members 101] [-vars U,FSDSC] [-codec nc]
  ensemblegen stats -var U [-grid small] [-members 101]
  ensemblegen check -orig dir/ -recon dir/ -var U`)
	os.Exit(2)
}

// runCheck verifies externally reconstructed ensemble member files against
// the originals with the paper's four tests (§4.3): both directories must
// hold the same member_NNN.cdf files; -orig carries the trusted data.
func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	origDir := fs.String("orig", "", "directory of original member files")
	reconDir := fs.String("recon", "", "directory of reconstructed member files")
	varName := fs.String("var", "", "variable to verify")
	fs.Parse(args)
	if *origDir == "" || *reconDir == "" || *varName == "" {
		return fmt.Errorf("check requires -orig, -recon and -var")
	}
	paths, err := filepath.Glob(filepath.Join(*origDir, "member_*.cdf"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	if len(paths) < 3 {
		return fmt.Errorf("need at least 3 member files in %s, found %d", *origDir, len(paths))
	}

	var fields []*field.Field
	var recon [][]float32
	var g *grid.Grid
	for _, p := range paths {
		of, err := cdf.Open(p)
		if err != nil {
			return err
		}
		v, ok := of.Var(*varName)
		if !ok {
			return fmt.Errorf("%s: variable %q missing", p, *varName)
		}
		data, err := of.ReadVar(*varName)
		if err != nil {
			return err
		}
		// Infer the grid from the variable's trailing dimensions.
		if g == nil {
			nd := len(v.Dims)
			nlat := of.Dims[v.Dims[nd-2]].Len
			nlon := of.Dims[v.Dims[nd-1]].Len
			nlev := 1
			for _, d := range v.Dims[:nd-2] {
				nlev *= of.Dims[d].Len
			}
			if nlev < 1 {
				nlev = 1
			}
			g = grid.New("file", nlat, nlon, nlev)
		}
		f := field.New(*varName, "", g, len(v.Dims) > 2)
		copy(f.Data, data)
		f.HasFill, f.Fill = v.HasFill, v.Fill
		fields = append(fields, f)

		rp := filepath.Join(*reconDir, filepath.Base(p))
		rf, err := cdf.Open(rp)
		if err != nil {
			return fmt.Errorf("reconstructed member missing: %w", err)
		}
		rdata, err := rf.ReadVar(*varName)
		if err != nil {
			return err
		}
		recon = append(recon, rdata)
	}

	vs, err := ensemble.Build(fields)
	if err != nil {
		return err
	}
	verifier := &pvt.Verifier{
		Stats: vs,
		Thr:   pvt.Default(),
	}
	res, err := verifier.VerifyData(*reconDir, recon)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Verification of %s against %s (%s, %d members)", *reconDir, *origDir, *varName, len(fields)),
		Headers: []string{"test", "result"},
	}
	pass := func(b bool) string {
		if b {
			return "pass"
		}
		return "FAIL"
	}
	t.AddRow("correlation >= 0.99999", pass(res.RhoPass))
	t.AddRow("RMSZ within ensemble (eq. 8)", pass(res.RMSZPass))
	t.AddRow("E_nmax ratio <= 1/10 (eq. 11)", pass(res.EnmaxPass))
	t.AddRow("bias |s_I - s_WC| <= 0.05 (eq. 9)", pass(res.BiasPass))
	t.AddRow("ALL", pass(res.AllPass))
	fmt.Print(t.String())
	for _, c := range res.Checks {
		fmt.Printf("member %d: rho=%.7f e_nmax=%s RMSZ %0.4f -> %0.4f\n",
			c.Member, c.Errors.Pearson, report.Sci(c.Errors.ENMax), c.RMSZOrig, c.RMSZRecon)
	}
	if !res.AllPass {
		return fmt.Errorf("verification failed")
	}
	return nil
}

func buildGenerator(gridName string, members int, vars string) (*model.Generator, []varcatalog.Spec, error) {
	g := grid.ByName(gridName)
	if g == nil {
		return nil, nil, fmt.Errorf("unknown grid %q", gridName)
	}
	catalog := varcatalog.Default()
	if vars != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(vars, ",") {
			want[n] = true
		}
		var sub []varcatalog.Spec
		for _, s := range catalog {
			if want[s.Name] {
				sub = append(sub, s)
			}
		}
		if len(sub) == 0 {
			return nil, nil, fmt.Errorf("no catalog variables match %q", vars)
		}
		catalog = sub
	}
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.DefaultEnsembleConfig(members))
	return model.NewGenerator(g, catalog, ens), catalog, nil
}

func runWrite(args []string) error {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	dir := fs.String("dir", "", "output directory")
	gridName := fs.String("grid", "small", "grid preset")
	members := fs.Int("members", 101, "ensemble size")
	vars := fs.String("vars", "", "variable subset (default: all 170)")
	codec := fs.String("codec", "nc", "codec for the written files")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("write requires -dir")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	gen, catalog, err := buildGenerator(*gridName, *members, *vars)
	if err != nil {
		return err
	}
	g := gen.Grid
	for m := 0; m < *members; m++ {
		f := cdf.New()
		f.GlobalAttr("member", fmt.Sprint(m))
		f.GlobalAttr("grid", g.Name)
		lev := f.AddDim("lev", g.NLev)
		lat := f.AddDim("lat", g.NLat)
		lon := f.AddDim("lon", g.NLon)
		for idx, spec := range catalog {
			fl := gen.Field(idx, m)
			dims := []int{lat, lon}
			if spec.ThreeD {
				dims = []int{lev, lat, lon}
			}
			v, err := f.AddVar(spec.Name, dims, fl.Data, cdf.Attr{Name: "units", Value: spec.Units})
			if err != nil {
				return err
			}
			if fl.HasFill {
				v.HasFill = true
				v.Fill = fl.Fill
			}
		}
		path := filepath.Join(*dir, fmt.Sprintf("member_%03d.cdf", m))
		if err := f.WriteFile(path, cdf.WriteOptions{Codec: *codec}); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d member files (%d variables each) to %s\n", *members, len(catalog), *dir)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	varName := fs.String("var", "U", "variable to analyze")
	gridName := fs.String("grid", "small", "grid preset")
	members := fs.Int("members", 101, "ensemble size")
	fs.Parse(args)

	gen, catalog, err := buildGenerator(*gridName, *members, *varName)
	if err != nil {
		return err
	}
	_, idx, ok := varcatalog.ByName(catalog, *varName)
	if !ok {
		return fmt.Errorf("unknown variable %q", *varName)
	}
	fields := ensemble.CollectFields(gen, idx)
	vs, err := ensemble.Build(fields)
	if err != nil {
		return err
	}
	rmszBox := vs.RMSZBox()
	enmaxBox := vs.EnmaxBox()
	gmBox := vs.GlobalMeanBox()
	t := &report.Table{
		Title:   fmt.Sprintf("Ensemble statistics for %s (grid %s, %d members)", *varName, *gridName, *members),
		Headers: []string{"quantity", "min", "q1", "median", "q3", "max"},
	}
	addBox := func(name string, b stats.Boxplot) {
		t.AddRow(name, report.Sci(b.Min), report.Sci(b.Q1), report.Sci(b.Median),
			report.Sci(b.Q3), report.Sci(b.Max))
	}
	addBox("RMSZ (eq. 7)", rmszBox)
	addBox("E_nmax (eq. 10)", enmaxBox)
	addBox("global mean", gmBox)
	fmt.Print(t.String())
	fmt.Printf("median per-point ensemble sigma: %s\n", report.Sci(vs.SigmaMedian()))
	fmt.Println()
	fmt.Print(report.HistogramChart("RMSZ distribution", stats.NewHistogram(vs.RMSZ, 15), nil, nil, 50))
	return nil
}
