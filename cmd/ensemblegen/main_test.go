package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"climcompress/internal/cdf"
)

func TestWriteStatsCheckFlow(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig")
	if err := runWrite([]string{"-dir", orig, "-grid", "test", "-members", "7", "-vars", "U"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("wrote %d member files, want 7", len(entries))
	}

	if err := runStats([]string{"-var", "U", "-grid", "test", "-members", "7"}); err != nil {
		t.Fatal(err)
	}

	// Lossless "reconstruction": check must pass.
	recon := filepath.Join(dir, "recon")
	if err := os.MkdirAll(recon, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		f, err := cdf.Open(filepath.Join(orig, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteFile(filepath.Join(recon, e.Name()), cdf.WriteOptions{Codec: "fpzip-32"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCheck([]string{"-orig", orig, "-recon", recon, "-var", "U"}); err != nil {
		t.Fatalf("lossless check failed: %v", err)
	}

	// Destroyed reconstruction: check must fail.
	bad := filepath.Join(dir, "bad")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		f, err := cdf.Open(filepath.Join(orig, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data, err := f.ReadVar("U")
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			data[i] += 5 // several sigma: climate-changing
		}
		g := cdf.New()
		lev := g.AddDim("lev", f.Dims[0].Len)
		lat := g.AddDim("lat", f.Dims[1].Len)
		lon := g.AddDim("lon", f.Dims[2].Len)
		if _, err := g.AddVar("U", []int{lev, lat, lon}, data); err != nil {
			t.Fatal(err)
		}
		if err := g.WriteFile(filepath.Join(bad, e.Name()), cdf.WriteOptions{Codec: "raw"}); err != nil {
			t.Fatal(err)
		}
	}
	err = runCheck([]string{"-orig", orig, "-recon", bad, "-var", "U"})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("shifted reconstruction should fail the check, got %v", err)
	}
}

func TestCheckValidation(t *testing.T) {
	if err := runCheck([]string{"-orig", "x"}); err == nil {
		t.Error("check without -recon/-var should error")
	}
	dir := t.TempDir()
	if err := runCheck([]string{"-orig", dir, "-recon", dir, "-var", "U"}); err == nil {
		t.Error("empty directories should error")
	}
}

func TestWriteValidation(t *testing.T) {
	if err := runWrite([]string{"-grid", "test"}); err == nil {
		t.Error("write without -dir should error")
	}
	if err := runWrite([]string{"-dir", t.TempDir(), "-grid", "test", "-members", "3", "-vars", "NOPE"}); err == nil {
		t.Error("unknown variable should error")
	}
}
