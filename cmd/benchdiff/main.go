// Command benchdiff compares two benchjson reports (e.g. BENCH_PR1.json vs
// BENCH_PR2.json) and enforces the performance gate: it exits nonzero when
// any codec entry loses more than the threshold fraction of throughput, or
// when any entry's steady-state allocations per op increase at all. It is
// wired into `make bench-diff` so codec regressions fail mechanically
// instead of depending on someone eyeballing benchmark logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"climcompress/internal/benchjson"
)

func main() {
	base := flag.String("base", "BENCH_PR2.json", "baseline report")
	head := flag.String("head", "BENCH_PR3.json", "candidate report")
	threshold := flag.Float64("threshold", 0.15, "max allowed fractional throughput loss on codec entries")
	allocThreshold := flag.Float64("alloc-threshold", 0.25, "max allowed fractional increase in an experiment's cumulative heap allocation")
	serveOpsThreshold := flag.Float64("serve-ops-threshold", 0.15, "max allowed fractional ops/sec loss on serve entries")
	serveP99Threshold := flag.Float64("serve-p99-threshold", 0.25, "max allowed fractional p99 latency growth on serve entries")
	peakThreshold := flag.Float64("peak-threshold", 0.25, "max allowed fractional increase in an entry's peak live-heap residency")
	flag.Parse()

	baseRep, err := readReport(*base)
	if err != nil {
		fatal(err)
	}
	headRep, err := readReport(*head)
	if err != nil {
		fatal(err)
	}
	baseBy := byName(baseRep)
	headBy := byName(headRep)

	names := make([]string, 0, len(headBy))
	for name := range headBy {
		if _, ok := baseBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no common entries between %s and %s", *base, *head))
	}

	fmt.Printf("%-32s %12s %12s %8s  %s\n", "entry", "base MB/s", "head MB/s", "Δ%", "allocs/op")
	failures := 0
	for _, name := range names {
		b, h := baseBy[name], headBy[name]
		bt, ht := throughput(b), throughput(h)
		line := fmt.Sprintf("%-32s %12s %12s", name, mbs(b), mbs(h))
		if bt > 0 && ht > 0 {
			delta := (ht - bt) / bt
			line += fmt.Sprintf(" %+7.1f%%", 100*delta)
			if strings.HasPrefix(name, "codec/") && delta < -*threshold {
				line += fmt.Sprintf("  FAIL: throughput down more than %.0f%%", 100**threshold)
				failures++
			}
			if strings.HasPrefix(name, "serve/") && delta < -*serveOpsThreshold {
				line += fmt.Sprintf("  FAIL: ops/sec down more than %.0f%%", 100**serveOpsThreshold)
				failures++
			}
		} else {
			line += fmt.Sprintf(" %8s", "-")
		}
		if h.P99Ns > 0 {
			line += fmt.Sprintf("  p50 %s p99 %s", time.Duration(h.P50Ns), time.Duration(h.P99Ns))
			// Latency gate for the daemon's load-test entries: a tail-latency
			// blowup fails even when ops/sec holds (coalescing can keep the
			// rate up while queueing stretches the tail).
			if strings.HasPrefix(name, "serve/") && b.P99Ns > 0 &&
				float64(h.P99Ns) > float64(b.P99Ns)*(1+*serveP99Threshold) {
				line += fmt.Sprintf("  FAIL: p99 up more than %.0f%%", 100**serveP99Threshold)
				failures++
			}
		}
		switch {
		case b.AllocsPerOp != nil && h.AllocsPerOp != nil:
			line += fmt.Sprintf("  %d -> %d", *b.AllocsPerOp, *h.AllocsPerOp)
			if *h.AllocsPerOp > *b.AllocsPerOp {
				line += "  FAIL: allocs/op increased"
				failures++
			}
		case h.AllocsPerOp != nil:
			line += fmt.Sprintf("  (new) %d", *h.AllocsPerOp)
		}
		switch {
		case b.TotalAllocBytes != nil && h.TotalAllocBytes != nil:
			line += fmt.Sprintf("  heap %s -> %s", mib(*b.TotalAllocBytes), mib(*h.TotalAllocBytes))
			if float64(*h.TotalAllocBytes) > float64(*b.TotalAllocBytes)*(1+*allocThreshold) &&
				*h.TotalAllocBytes >= gateFloorBytes {
				line += fmt.Sprintf("  FAIL: cumulative heap allocation up more than %.0f%%", 100**allocThreshold)
				failures++
			}
		case h.TotalAllocBytes != nil:
			line += fmt.Sprintf("  heap (new) %s", mib(*h.TotalAllocBytes))
		}
		// Peak residency is gated separately from cumulative churn: a fused
		// streaming unit can churn the same bytes as a materializing one while
		// holding several times less live — and a regression in what a unit
		// keeps resident is invisible to the TotalAllocBytes gate. Entries only
		// in the head snapshot (older baselines predate the field) report
		// without gating.
		switch {
		case b.PeakHeapBytes != nil && h.PeakHeapBytes != nil:
			line += fmt.Sprintf("  peak %s -> %s", mib(*b.PeakHeapBytes), mib(*h.PeakHeapBytes))
			if float64(*h.PeakHeapBytes) > float64(*b.PeakHeapBytes)*(1+*peakThreshold) &&
				*h.PeakHeapBytes >= gateFloorBytes {
				line += fmt.Sprintf("  FAIL: peak live heap up more than %.0f%%", 100**peakThreshold)
				failures++
			}
		case h.PeakHeapBytes != nil:
			line += fmt.Sprintf("  peak (new) %s", mib(*h.PeakHeapBytes))
		}
		// lint/ entries are informational only: whole-module analysis
		// wall-clock tracks host load and package count too closely for a
		// percentage gate, so they diff visibly but never fail the run.
		if strings.HasPrefix(name, "lint/") {
			line += "  (not gated)"
		}
		fmt.Println(line)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s\n", failures, *base)
		os.Exit(1)
	}
	// Status goes to stderr like the failure path: stdout carries only
	// the comparison table, so it can be captured or diffed on its own.
	fmt.Fprintf(os.Stderr, "benchdiff: %d common entries, no regressions vs %s\n", len(names), *base)
}

// gateFloorBytes is the noise floor for the proportional memory gates: a
// head measurement below 1 MiB is dominated by fixed instrumentation cost
// (the heap sampler's own ticker, a stray GC boundary), so a percentage
// comparison against an equally tiny baseline gates noise, not code. An
// actual regression that matters pushes the head side past the floor and
// is gated as usual.
const gateFloorBytes = 1 << 20

func readReport(path string) (*benchjson.Report, error) {
	return benchjson.ReadFile(path)
}

// byName indexes entries, keeping the first occurrence of each name+note so
// cold/warm passes of the same experiment compare like with like.
func byName(rep *benchjson.Report) map[string]benchjson.Entry {
	out := make(map[string]benchjson.Entry, len(rep.Entries))
	for _, e := range rep.Entries {
		key := e.Name
		if e.Note != "" {
			key += " [" + e.Note + "]"
		}
		if _, ok := out[key]; !ok {
			out[key] = e
		}
	}
	return out
}

// throughput reduces an entry to a comparable ops-oriented rate: load-test
// ops/sec or MB/s when recorded, else inverse ns/op, else inverse seconds.
// serve/ load-test entries carry OpsPerSec and are gated on ops/sec and
// p99 latency (size-oriented codec gates never apply to them); entries
// present only in the head snapshot still diff cleanly against a baseline
// without them.
func throughput(e benchjson.Entry) float64 {
	switch {
	case e.OpsPerSec > 0:
		return e.OpsPerSec
	case e.MBPerSec > 0:
		return e.MBPerSec
	case e.NsPerOp > 0:
		return 1 / float64(e.NsPerOp)
	case e.Seconds > 0:
		return 1 / e.Seconds
	}
	return 0
}

// mib renders a byte count as mebibytes.
func mib(b uint64) string {
	return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
}

func mbs(e benchjson.Entry) string {
	switch {
	case e.OpsPerSec > 0:
		return fmt.Sprintf("%.0f/s", e.OpsPerSec)
	case e.MBPerSec > 0:
		return fmt.Sprintf("%.1f", e.MBPerSec)
	case e.NsPerOp > 0:
		return fmt.Sprintf("%dns", e.NsPerOp)
	case e.Seconds > 0:
		return fmt.Sprintf("%.2fs", e.Seconds)
	}
	return "-"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
