package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestMain lets the compiled test binary stand in for the real command:
// with the re-exec variable set it runs main() on its arguments instead
// of the test suite (see cmd/benchjson for the same pattern).
func TestMain(m *testing.M) {
	if os.Getenv("BENCHDIFF_SMOKE_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BENCHDIFF_SMOKE_RUN_MAIN=1")
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec: %v", err)
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

// TestStdoutCleanOnBadFlag: flag-parse errors belong on stderr; stdout
// is reserved for the comparison table.
func TestStdoutCleanOnBadFlag(t *testing.T) {
	stdout, stderr, code := runSelf(t, "-definitely-not-a-flag")
	if code == 0 {
		t.Error("bad flag exited 0")
	}
	if stdout != "" {
		t.Errorf("bad flag wrote to stdout:\n%s", stdout)
	}
	if stderr == "" {
		t.Error("bad flag produced no stderr diagnostic")
	}
}

// TestStdoutCleanOnMissingReport: an unreadable snapshot path is a
// diagnostic, not a report — stdout must stay empty.
func TestStdoutCleanOnMissingReport(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "absent.json")
	stdout, stderr, code := runSelf(t, "-base", missing, "-head", missing)
	if code == 0 {
		t.Error("missing report exited 0")
	}
	if stdout != "" {
		t.Errorf("missing report wrote to stdout:\n%s", stdout)
	}
	if stderr == "" {
		t.Error("missing report produced no stderr diagnostic")
	}
}
