// Command climatebench regenerates every table and figure of the paper's
// evaluation section from the synthetic CESM substrate.
//
// Usage:
//
//	climatebench [flags] <experiment>...
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 table8
// fig1 fig2 fig3 fig4 ssim all
//
// By default the §5.2 error experiments (tables 2–5, fig1, ssim) run on the
// "bench" grid and the 101-member ensemble experiments (tables 6–8,
// figs 2–4) on the "small" grid so the whole suite completes on a laptop;
// -grid forces one grid for everything (use -grid ne30 -members 101 for the
// full-size reproduction).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"climcompress/internal/artifact"
	"climcompress/internal/experiments"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/par"
)

var (
	gridName = flag.String("grid", "", "grid preset for all experiments (test|small|bench|ne30); empty = per-experiment default")
	members  = flag.Int("members", 101, "ensemble size for the CESM-PVT experiments")
	workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	seed     = flag.Uint64("seed", 2014, "seed for test-member selection")
	vars     = flag.String("vars", "", "comma-separated variable subset (default: all 170)")
	quiet    = flag.Bool("q", false, "suppress progress timing lines")
	cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheDir = flag.String("cachedir", ".climcache", "artifact cache directory: member fields, scoring vectors, error cells, verification verdicts, plus the chaotic-core integration under <dir>/l96 (empty disables)")
	noCache  = flag.Bool("nocache", false, "disable the artifact cache for this run (equivalent to -cachedir '')")
	invalid  = flag.String("invalidate", "", "comma-separated codec variants whose cached records are removed before running (the incremental-rerun primitive)")
	cacheMax = flag.Int64("cachemax", 0, "evict least-recently-used artifacts down to this many bytes after the run (0 = unbounded)")
)

// experimentSpec maps a name to its runner method and default grid.
type experimentSpec struct {
	name        string
	defaultGrid string // "bench" for error experiments, "small" for ensemble ones
	run         func(r *experiments.Runner) (string, error)
}

func specs() []experimentSpec {
	return []experimentSpec{
		{"table1", "bench", func(*experiments.Runner) (string, error) { return experiments.Table1(), nil }},
		{"table2", "bench", (*experiments.Runner).Table2},
		{"table3", "bench", (*experiments.Runner).Table3},
		{"table4", "bench", (*experiments.Runner).Table4},
		{"table5", "bench", (*experiments.Runner).Table5},
		{"table6", "small", (*experiments.Runner).Table6},
		{"table7", "small", (*experiments.Runner).Table7},
		{"table8", "small", (*experiments.Runner).Table8},
		{"fig1", "bench", (*experiments.Runner).Fig1},
		{"fig2", "small", (*experiments.Runner).Fig2},
		{"fig3", "small", (*experiments.Runner).Fig3},
		{"fig4", "small", (*experiments.Runner).Fig4},
		{"ssim", "bench", (*experiments.Runner).SSIMReport},
		{"gradient", "bench", (*experiments.Runner).GradientReport},
		{"restart", "bench", (*experiments.Runner).RestartReport},
		{"characterize", "bench", (*experiments.Runner).CharacterizeReport},
		{"portverify", "small", (*experiments.Runner).PortVerifyReport},
		{"analysis", "bench", (*experiments.Runner).AnalysisReport},
		{"thresholds", "small", (*experiments.Runner).ThresholdSweep},
	}
}

func main() {
	flag.Parse()
	par.SetWidth(*workers)
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: climatebench [flags] <experiment>...")
		fmt.Fprintln(os.Stderr, "experiments: table1..table8 fig1..fig4 ssim gradient restart all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	all := specs()
	byName := make(map[string]experimentSpec, len(all))
	for _, s := range all {
		byName[s.name] = s
	}
	var selected []experimentSpec
	for _, a := range args {
		if a == "all" {
			selected = all
			break
		}
		s, ok := byName[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "climatebench: unknown experiment %q\n", a)
			os.Exit(2)
		}
		selected = append(selected, s)
	}

	var varList []string
	if *vars != "" {
		varList = strings.Split(*vars, ",")
	}

	// The unified artifact store: experiment records under -cachedir, the
	// chaotic-core integration cache colocated under <cachedir>/l96.
	if *noCache {
		*cacheDir = ""
	}
	store := artifact.Open(*cacheDir)

	// One runner per grid, sharing the grid-independent chaotic ensemble.
	// The shared closure integrates (or loads from the on-disk cache) on the
	// first experiment that actually needs members, so member-free
	// experiments skip the integration entirely.
	var l96Once sync.Once
	var sharedL96 *l96.Ensemble
	l96Source := func() *l96.Ensemble {
		l96Once.Do(func() {
			lc := l96.DefaultEnsembleConfig(*members)
			sharedL96, _ = l96.LoadOrCompute(l96.DefaultParams(), lc, store.L96Dir())
		})
		return sharedL96
	}
	runners := make(map[string]*experiments.Runner)
	runnerFor := func(gname string) *experiments.Runner {
		if *gridName != "" {
			gname = *gridName
		}
		if r, ok := runners[gname]; ok {
			return r
		}
		g := grid.ByName(gname)
		if g == nil {
			fmt.Fprintf(os.Stderr, "climatebench: unknown grid %q\n", gname)
			os.Exit(2)
		}
		cfg := experiments.DefaultConfig(g)
		cfg.Members = *members
		cfg.Workers = *workers
		cfg.Seed = *seed
		cfg.Variables = varList
		cfg.L96Source = l96Source
		cfg.Cache = store
		r := experiments.NewRunner(cfg, nil)
		runners[gname] = r
		if *invalid != "" {
			for _, v := range strings.Split(*invalid, ",") {
				r.InvalidateVariant(strings.TrimSpace(v))
			}
		}
		return r
	}

	exitCode := 0
	for _, s := range selected {
		start := time.Now()
		out, err := s.run(runnerFor(s.defaultGrid))
		if err != nil {
			fmt.Fprintf(os.Stderr, "climatebench: %s: %v\n", s.name, err)
			exitCode = 1
			continue
		}
		fmt.Println(out)
		if !*quiet {
			fmt.Printf("[%s completed in %.1fs]\n\n", s.name, time.Since(start).Seconds())
		}
	}
	if *cacheMax > 0 {
		if n := store.Trim(*cacheMax); n > 0 && !*quiet {
			fmt.Printf("[cache trimmed: %d artifacts evicted]\n", n)
		}
	}
	if !*quiet && store.Enabled() {
		st := store.Stats()
		fmt.Printf("[cache %s: %d hits, %d misses, %d writes]\n",
			store.Dir(), st.Hits, st.Misses, st.Puts)
	}
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	// Written explicitly (not deferred): os.Exit below skips defers.
	if *memprof != "" {
		writeHeapProfile(*memprof)
	}
	os.Exit(exitCode)
}

// writeHeapProfile snapshots the heap into path.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
		return
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
	}
	// The profile was just written; a failed Close can drop its tail
	// silently, so it is checked rather than deferred. (errdrop)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: close %s: %v\n", path, err)
	}
}
