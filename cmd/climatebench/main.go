// Command climatebench regenerates every table and figure of the paper's
// evaluation section from the synthetic CESM substrate.
//
// Usage:
//
//	climatebench [flags] <experiment>...
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 table8
// fig1 fig2 fig3 fig4 ssim all
//
// By default the §5.2 error experiments (tables 2–5, fig1, ssim) run on the
// "bench" grid and the 101-member ensemble experiments (tables 6–8,
// figs 2–4) on the "small" grid so the whole suite completes on a laptop;
// -grid forces one grid for everything (use -grid ne30 -members 101 for the
// full-size reproduction).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"climcompress/internal/artifact"
	"climcompress/internal/experiments"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/par"
	"climcompress/internal/report"
	"climcompress/internal/serve"
	"climcompress/internal/shard"
)

var (
	gridName = flag.String("grid", "", "grid preset for all experiments (test|small|bench|ne30); empty = per-experiment default")
	members  = flag.Int("members", 101, "ensemble size for the CESM-PVT experiments")
	workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	seed     = flag.Uint64("seed", 2014, "seed for test-member selection")
	vars     = flag.String("vars", "", "comma-separated variable subset (default: all 170)")
	quiet    = flag.Bool("q", false, "suppress progress timing lines")
	cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheDir = flag.String("cachedir", ".climcache", "artifact cache directory: member fields, scoring vectors, error cells, verification verdicts, plus the chaotic-core integration under <dir>/l96 (empty disables)")
	noCache  = flag.Bool("nocache", false, "disable the artifact cache for this run (equivalent to -cachedir '')")
	invalid  = flag.String("invalidate", "", "comma-separated codec variants whose cached records are removed before running (the incremental-rerun primitive)")
	cacheMax = flag.Int64("cachemax", 0, "evict least-recently-used artifacts down to this many bytes after the run (0 = unbounded)")

	verdictSpec = flag.String("verdict", "", "compute one verification verdict VAR/VARIANT and print its JSON body; byte-identical to climatebenchd's POST /verdict response for the same substrate flags")

	shardSpec  = flag.String("shard", "", "compute only shard i of n (format i/n, 0-based) of the selected experiments' work units and exit without rendering; requires the artifact cache")
	supervise  = flag.Int("supervise", 0, "fork n -shard children of this binary, restart crashed ones, then render the selected experiments from the shared cache")
	shardTTL   = flag.Duration("shardttl", 2*time.Minute, "sharded runs: lease expiry; a shard whose lease goes untouched this long is presumed dead and its units are stolen")
	cacheStats = flag.Bool("cachestats", false, "print a cache statistics snapshot (per-process counters plus on-disk footprint) at exit; with no experiments, probe the cache directory and exit")
)

// experimentSpec maps a name to its runner method and default grid.
type experimentSpec struct {
	name        string
	defaultGrid string // "bench" for error experiments, "small" for ensemble ones
	run         func(r *experiments.Runner) (string, error)
}

func specs() []experimentSpec {
	return []experimentSpec{
		{"table1", "bench", func(*experiments.Runner) (string, error) { return experiments.Table1(), nil }},
		{"table2", "bench", (*experiments.Runner).Table2},
		{"table3", "bench", (*experiments.Runner).Table3},
		{"table4", "bench", (*experiments.Runner).Table4},
		{"table5", "bench", (*experiments.Runner).Table5},
		{"table6", "small", (*experiments.Runner).Table6},
		{"table7", "small", (*experiments.Runner).Table7},
		{"table8", "small", (*experiments.Runner).Table8},
		{"fig1", "bench", (*experiments.Runner).Fig1},
		{"fig2", "small", (*experiments.Runner).Fig2},
		{"fig3", "small", (*experiments.Runner).Fig3},
		{"fig4", "small", (*experiments.Runner).Fig4},
		{"ssim", "bench", (*experiments.Runner).SSIMReport},
		{"gradient", "bench", (*experiments.Runner).GradientReport},
		{"restart", "bench", (*experiments.Runner).RestartReport},
		{"characterize", "bench", (*experiments.Runner).CharacterizeReport},
		{"portverify", "small", (*experiments.Runner).PortVerifyReport},
		{"analysis", "bench", (*experiments.Runner).AnalysisReport},
		{"thresholds", "small", (*experiments.Runner).ThresholdSweep},
	}
}

func main() {
	flag.Parse()
	par.SetWidth(*workers)
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	args := flag.Args()
	if len(args) == 0 && *verdictSpec == "" {
		if *cacheStats {
			// Standalone probe of a (possibly shared) cache directory.
			if *noCache {
				*cacheDir = ""
			}
			printCacheStats(artifact.Open(*cacheDir))
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "usage: climatebench [flags] <experiment>...")
		fmt.Fprintln(os.Stderr, "experiments: table1..table8 fig1..fig4 ssim gradient restart all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	all := specs()
	byName := make(map[string]experimentSpec, len(all))
	for _, s := range all {
		byName[s.name] = s
	}
	var selected []experimentSpec
	for _, a := range args {
		if a == "all" {
			selected = all
			break
		}
		s, ok := byName[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "climatebench: unknown experiment %q\n", a)
			os.Exit(2)
		}
		selected = append(selected, s)
	}

	var varList []string
	if *vars != "" {
		varList = strings.Split(*vars, ",")
	}

	// The unified artifact store: experiment records under -cachedir, the
	// chaotic-core integration cache colocated under <cachedir>/l96.
	if *noCache {
		*cacheDir = ""
	}
	store := artifact.Open(*cacheDir)

	// One runner per grid, sharing the grid-independent chaotic ensemble.
	// The shared closure integrates (or loads from the on-disk cache) on the
	// first experiment that actually needs members, so member-free
	// experiments skip the integration entirely.
	var l96Once sync.Once
	var sharedL96 *l96.Ensemble
	l96Source := func() *l96.Ensemble {
		l96Once.Do(func() {
			lc := l96.DefaultEnsembleConfig(*members)
			sharedL96, _ = l96.LoadOrCompute(l96.DefaultParams(), lc, store.L96Dir())
		})
		return sharedL96
	}
	runners := make(map[string]*experiments.Runner)
	runnerFor := func(gname string) *experiments.Runner {
		if *gridName != "" {
			gname = *gridName
		}
		if r, ok := runners[gname]; ok {
			return r
		}
		g := grid.ByName(gname)
		if g == nil {
			fmt.Fprintf(os.Stderr, "climatebench: unknown grid %q\n", gname)
			os.Exit(2)
		}
		cfg := experiments.DefaultConfig(g)
		cfg.Members = *members
		cfg.Workers = *workers
		cfg.Seed = *seed
		cfg.Variables = varList
		cfg.L96Source = l96Source
		cfg.Cache = store
		r := experiments.NewRunner(cfg, nil)
		runners[gname] = r
		if *invalid != "" {
			for _, v := range strings.Split(*invalid, ",") {
				r.InvalidateVariant(strings.TrimSpace(v))
			}
		}
		return r
	}

	// One-verdict mode: the batch twin of climatebenchd's POST /verdict.
	// Both sides render through serve.Verdict.AppendJSON on the same runner
	// construction, so the serve-smoke gate can compare output bytes
	// literally. The "small" grid matches the daemon's default and the
	// ensemble experiments' default (tables 6-8).
	if *verdictSpec != "" {
		name, variant, ok := strings.Cut(*verdictSpec, "/")
		if !ok || name == "" || variant == "" {
			fmt.Fprintln(os.Stderr, "climatebench: -verdict wants VAR/VARIANT, e.g. -verdict U/fpzip-24")
			os.Exit(2)
		}
		o, err := runnerFor("small").VerdictFor(name, variant)
		if err != nil {
			fmt.Fprintf(os.Stderr, "climatebench: -verdict: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(serve.FromOutcome(name, variant, o).AppendJSON(nil))
		os.Exit(0)
	}

	// Work-unit enumeration for sharded runs: the selected experiments'
	// units across their effective grids, in first-appearance order. Every
	// process derives the identical list from the same flags, so the
	// deterministic partition needs no coordination channel.
	collectUnits := func() []shard.Unit {
		var gridOrder []string
		namesByGrid := map[string][]string{}
		for _, s := range selected {
			g := s.defaultGrid
			if *gridName != "" {
				g = *gridName
			}
			if _, ok := namesByGrid[g]; !ok {
				gridOrder = append(gridOrder, g)
			}
			namesByGrid[g] = append(namesByGrid[g], s.name)
		}
		var units []shard.Unit
		for _, g := range gridOrder {
			units = append(units, runnerFor(g).UnitsFor(namesByGrid[g])...)
		}
		return units
	}

	if *shardSpec != "" {
		code := runShard(store, collectUnits())
		if *cacheStats {
			printCacheStats(store)
		}
		if *cpuprof != "" {
			pprof.StopCPUProfile()
		}
		if *memprof != "" {
			writeHeapProfile(*memprof)
		}
		os.Exit(code)
	}
	var supervisedUnits []shard.Unit
	if *supervise > 0 {
		// Enumerating units here also applies -invalidate in the parent
		// before any child starts.
		supervisedUnits = collectUnits()
		// Pre-warm the chaotic-core cache: one integration in the parent,
		// loaded from <cachedir>/l96 by every child, instead of a thundering
		// herd of n identical integrations on a cold cache.
		l96Source()
		if code := runSupervisor(store, *supervise, args); code != 0 {
			os.Exit(code)
		}
		// Fall through: the merge step renders the selected experiments from
		// the now-warm shared cache.
	}

	exitCode := 0
	for _, s := range selected {
		start := time.Now()
		out, err := s.run(runnerFor(s.defaultGrid))
		if err != nil {
			fmt.Fprintf(os.Stderr, "climatebench: %s: %v\n", s.name, err)
			exitCode = 1
			continue
		}
		fmt.Println(out)
		if !*quiet {
			fmt.Printf("[%s completed in %.1fs]\n\n", s.name, time.Since(start).Seconds())
		}
	}
	if *supervise > 0 && !*quiet {
		fmt.Println(shardManifest(store, supervisedUnits, *supervise))
	}
	if *cacheMax > 0 {
		if n := store.Trim(*cacheMax); n > 0 && !*quiet {
			fmt.Printf("[cache trimmed: %d artifacts evicted]\n", n)
		}
	}
	if !*quiet && store.Enabled() {
		// Stats.String carries every counter, including the PR 5 claim
		// counters — sharded runs through this path claim leases too.
		fmt.Printf("[cache %s: %s]\n", store.Dir(), store.Stats())
	}
	if *cacheStats {
		printCacheStats(store)
	}
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	// Written explicitly (not deferred): os.Exit below skips defers.
	if *memprof != "" {
		writeHeapProfile(*memprof)
	}
	os.Exit(exitCode)
}

// parseShardSpec parses "-shard i/n" (0-based i).
func parseShardSpec(spec string) (self, shards int, err error) {
	a, b, ok := strings.Cut(spec, "/")
	if ok {
		self, err = strconv.Atoi(a)
		if err == nil {
			shards, err = strconv.Atoi(b)
		}
	}
	if !ok || err != nil || shards < 1 || self < 0 || self >= shards {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/n with 0 <= i < n", spec)
	}
	return self, shards, nil
}

// runShard computes one shard's slice of the unit space and exits without
// rendering; results land in the shared cache, a summary record and a
// stderr line report what happened. Stdout stays empty so the merge step's
// output remains byte-comparable to a single-process run.
func runShard(store *artifact.Store, units []shard.Unit) int {
	self, shards, err := parseShardSpec(*shardSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
		return 2
	}
	if !store.Enabled() {
		fmt.Fprintln(os.Stderr, "climatebench: -shard requires the artifact cache (-cachedir)")
		return 2
	}
	owner := fmt.Sprintf("shard-%d", self)
	var logf func(string, ...any)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "climatebench: "+format+"\n", args...)
		}
	}
	res, err := shard.Run(units, shard.Options{
		Store: store, Self: self, Shards: shards,
		TTL: *shardTTL, Owner: owner, Logf: logf,
	})
	shard.PutSummary(store, owner, res)
	fmt.Fprintf(os.Stderr, "[%s: %d units computed, %d skipped, %d stolen, %d expired leases, %d waits]\n",
		owner, len(res.Computed), res.Skipped, res.Stolen, res.Expired, res.Waits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
		return 1
	}
	return 0
}

// runSupervisor forks n -shard children of this binary over the shared
// cache and restarts crashed ones (bounded per slot). Children's stdout is
// routed to our stderr, so the parent's stdout carries only the merge
// step's rendering. Returns 0 once every shard has exited cleanly.
func runSupervisor(store *artifact.Store, n int, expNames []string) int {
	if !store.Enabled() {
		fmt.Fprintln(os.Stderr, "climatebench: -supervise requires the artifact cache (-cachedir)")
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
		return 1
	}
	start := func(i int) (*exec.Cmd, error) {
		cargs := []string{
			"-shard", fmt.Sprintf("%d/%d", i, n),
			"-members", fmt.Sprint(*members),
			"-workers", fmt.Sprint(*workers),
			"-seed", fmt.Sprint(*seed),
			"-cachedir", *cacheDir,
			"-shardttl", shardTTL.String(),
		}
		if *gridName != "" {
			cargs = append(cargs, "-grid", *gridName)
		}
		if *vars != "" {
			cargs = append(cargs, "-vars", *vars)
		}
		if *quiet {
			cargs = append(cargs, "-q")
		}
		cargs = append(cargs, expNames...)
		cmd := exec.Command(exe, cargs...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd, cmd.Start()
	}
	const maxRestarts = 3
	cmds := make([]*exec.Cmd, n)
	for i := range cmds {
		if cmds[i], err = start(i); err != nil {
			fmt.Fprintf(os.Stderr, "climatebench: starting shard %d/%d: %v\n", i, n, err)
			return 1
		}
	}
	// Sequential waits are fine: the children run concurrently regardless,
	// and a crashed shard's units are stolen by its peers once the lease
	// expires, so a delayed restart costs throughput, never correctness.
	failed := false
	for i := 0; i < n; i++ {
		for restarts := 0; ; restarts++ {
			err := cmds[i].Wait()
			if err == nil {
				break
			}
			if restarts >= maxRestarts {
				fmt.Fprintf(os.Stderr, "climatebench: shard %d/%d failed permanently: %v\n", i, n, err)
				failed = true
				break
			}
			fmt.Fprintf(os.Stderr, "climatebench: shard %d/%d crashed (%v); restarting (%d/%d)\n",
				i, n, err, restarts+1, maxRestarts)
			if cmds[i], err = start(i); err != nil {
				fmt.Fprintf(os.Stderr, "climatebench: restarting shard %d/%d: %v\n", i, n, err)
				failed = true
				break
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

// shardManifest reconstructs the run manifest purely from the shared store:
// done-record owners attribute every unit, the shards' persisted summaries
// supply steal/expiry/wait counts.
func shardManifest(store *artifact.Store, units []shard.Unit, n int) string {
	counts := map[string]int{}
	for _, u := range units {
		if owner, ok := shard.OwnerOf(store, u); ok {
			counts[owner]++
		}
	}
	rows := make([]report.ShardRow, 0, n)
	for i := 0; i < n; i++ {
		owner := fmt.Sprintf("shard-%d", i)
		row := report.ShardRow{Shard: owner, Units: counts[owner],
			Stolen: -1, Expired: -1, Waits: -1}
		if sum, ok := shard.LoadSummary(store, owner); ok {
			row.Stolen, row.Expired, row.Waits = sum.Stolen, sum.Expired, sum.Waits
		}
		rows = append(rows, row)
	}
	return report.ShardManifest(rows)
}

// printCacheStats emits the cache snapshot: per-process counters plus the
// cross-process on-disk footprint.
func printCacheStats(store *artifact.Store) {
	if !store.Enabled() {
		fmt.Println("[cachestats: cache disabled]")
		return
	}
	files, bytes := store.Usage()
	fmt.Printf("[cachestats %s: %s; %d artifacts, %d bytes on disk]\n",
		store.Dir(), store.Stats(), files, bytes)
}

// writeHeapProfile snapshots the heap into path.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
		return
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: %v\n", err)
	}
	// The profile was just written; a failed Close can drop its tail
	// silently, so it is checked rather than deferred. (errdrop)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "climatebench: close %s: %v\n", path, err)
	}
}
