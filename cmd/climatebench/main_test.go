package main

import (
	"testing"

	"climcompress/internal/grid"
)

func TestSpecsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range specs() {
		if s.name == "" || s.run == nil {
			t.Fatalf("malformed spec %+v", s)
		}
		if seen[s.name] {
			t.Fatalf("duplicate experiment %q", s.name)
		}
		seen[s.name] = true
		if grid.ByName(s.defaultGrid) == nil {
			t.Fatalf("experiment %q has unknown default grid %q", s.name, s.defaultGrid)
		}
	}
	// Every paper artifact must be present.
	for _, want := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
		"fig1", "fig2", "fig3", "fig4",
	} {
		if !seen[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
	// And the extensions.
	for _, want := range []string{"ssim", "gradient", "restart", "analysis", "characterize", "portverify", "thresholds"} {
		if !seen[want] {
			t.Errorf("extension %q missing", want)
		}
	}
}
