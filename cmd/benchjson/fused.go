package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"climcompress/internal/benchjson"
	"climcompress/internal/compress"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/metrics"
	"climcompress/internal/model"
	"climcompress/internal/varcatalog"
)

// fusedMicroCodecs are the natively-chunked representatives benchmarked at
// ns/op: one per streaming decode family (XOR-float, blockwise affine,
// depth-mapped codes).
var fusedMicroCodecs = []string{"tsblob", "apax-4", "fpzip-24"}

// fusedUnitVariants is the natively-chunked slice of the study matrix used
// by the peak-heap error-matrix units. The deflate-bound families (nc,
// grib2, isa) are excluded on purpose: their fallback chunk decode
// materializes a pooled field internally, so a whole-matrix unit would
// dilute the residency difference the entry exists to pin.
var fusedUnitVariants = []string{"tsblob", "apax-2", "apax-4", "apax-5", "fpzip-24", "fpzip-16"}

// fusedBenchmarks is the `-fused-only` entry point: the decode→compare
// micros plus the two peak-heap error-matrix units (fused vs materialized).
func fusedBenchmarks(rep *benchjson.Report) error {
	fdata, shape := benchField()
	fusedMicros(rep, fdata, shape)
	big, bigShape := fusedUnitField()
	for _, fused := range []bool{true, false} {
		if err := fusedErrmatUnit(rep, big, bigShape, fused); err != nil {
			return err
		}
	}
	return nil
}

// fusedMicros pins the fused chunked-decode→Comparer kernel against the
// materialize-then-Compare shape it replaced, per codec family, on the
// small-grid bench field. The fused entries target 0 allocs/op: the chunk
// buffer, the accumulator and the yield closure all live outside the loop.
func fusedMicros(rep *benchjson.Report, fdata []float32, shape compress.Shape) {
	for _, name := range fusedMicroCodecs {
		codec, err := compress.New(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		buf, err := compress.CompressInto(codec, nil, fdata, shape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		chunk := make([]float32, compress.DefaultChunkLen)
		var cmp metrics.Comparer
		yield := func(off int, vals []float32) error {
			cmp.Push(fdata[off:off+len(vals)], vals, off)
			return nil
		}
		rep.AddBenchmarkWorkers("fused/"+name+"/decode-compare", 1, func(b *testing.B) {
			b.SetBytes(int64(4 * len(fdata)))
			for i := 0; i < b.N; i++ {
				cmp.Reset(0, false)
				if err := compress.DecodeChunks(codec, buf, chunk, yield); err != nil {
					b.Fatal(err)
				}
				if cmp.Total() != len(fdata) {
					b.Fatalf("decoded %d of %d points", cmp.Total(), len(fdata))
				}
			}
		})
		out := make([]float32, len(fdata))
		rep.AddBenchmarkWorkers("fused/"+name+"/materialize-compare", 1, func(b *testing.B) {
			b.SetBytes(int64(4 * len(fdata)))
			for i := 0; i < b.N; i++ {
				var err error
				out, err = compress.DecompressInto(codec, out, buf)
				if err != nil {
					b.Fatal(err)
				}
				if e := metrics.Compare(fdata, out, 0, false); e.N != len(fdata) {
					b.Fatalf("compared %d of %d points", e.N, len(fdata))
				}
			}
		})
	}
}

// fusedUnitField synthesizes one bench-grid 3-D variable (~650 KiB) so the
// error-matrix units measure residency at the scale where it matters.
func fusedUnitField() ([]float32, compress.Shape) {
	g := grid.Bench()
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.EnsembleConfig{
		Members: 3, Dt: 0.002, SpinupSteps: 1000,
		DivergeSteps: 4000, CalibSteps: 2000, Eps: 1e-14,
	})
	catalog := varcatalog.Default()
	gen := model.NewGenerator(g, catalog, ens)
	_, idx, _ := varcatalog.ByName(catalog, "U")
	f := gen.Field(idx, 0)
	return f.Data, compress.Shape{NLev: f.NLev, NLat: g.NLat, NLon: g.NLon}
}

// fusedErrmatUnit runs the verification half of one cold error-matrix
// unit — decode every natively-chunked variant of one bench-grid field
// and reduce it to error metrics — and records its wall-clock, cumulative
// allocation and peak live-heap delta over a post-GC baseline. The fused
// pass streams chunks into a Comparer; the materialized pass is the
// pre-fusion shape, holding a full reconstructed field per variant. The
// compressed streams and the original field are built before the baseline
// snapshot: compression is shape-identical in both passes (and pinned
// separately by the codec/ entries), so keeping its churn out of the
// watched region lets the delta isolate what each verification shape must
// keep live. Collecting between variants likewise keeps one variant's
// garbage out of the next one's peak.
func fusedErrmatUnit(rep *benchjson.Report, fdata []float32, shape compress.Shape, fused bool) error {
	note := "materialized"
	if fused {
		note = "fused"
	}
	codecs := make([]compress.Codec, len(fusedUnitVariants))
	streams := make([][]byte, len(fusedUnitVariants))
	for i, name := range fusedUnitVariants {
		codec, err := compress.New(name)
		if err != nil {
			return err
		}
		buf, err := compress.CompressInto(codec, nil, fdata, shape)
		if err != nil {
			return fmt.Errorf("errmat-unit %s: %w", name, err)
		}
		codecs[i], streams[i] = codec, buf
	}
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	hw := benchjson.WatchHeap(time.Millisecond)
	t0 := time.Now()

	// The original field is part of the unit's resident set in both passes
	// (every comparison reads it), so it is acquired inside the watched
	// region: the peaks then read as "orig + what the pass adds" — one
	// reconstructed field for materialized, one chunk for fused — instead
	// of near-zero deltas that a later gate could not compare robustly.
	orig := append([]float32(nil), fdata...)
	var out []float32
	var chunk []float32
	var cmp metrics.Comparer
	if fused {
		chunk = make([]float32, compress.DefaultChunkLen)
	}
	for i, name := range fusedUnitVariants {
		var err error
		cmp.Reset(0, false)
		if fused {
			err = compress.DecodeChunks(codecs[i], streams[i], chunk, func(off int, vals []float32) error {
				cmp.Push(orig[off:off+len(vals)], vals, off)
				return nil
			})
		} else {
			out, err = compress.DecompressInto(codecs[i], out, streams[i])
			if err == nil {
				cmp.Push(orig, out, 0)
			}
		}
		if err != nil {
			return fmt.Errorf("errmat-unit %s: %w", name, err)
		}
		if e := cmp.Finish(); e.N != len(orig) {
			return fmt.Errorf("errmat-unit %s: compared %d of %d points", name, e.N, len(orig))
		}
		runtime.GC()
	}

	sec := time.Since(t0).Seconds()
	peak := hw.Stop()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	var delta uint64
	if peak > m0.HeapAlloc {
		delta = peak - m0.HeapAlloc
	}
	rep.AddSecondsAllocPeak("fused/errmat-unit", sec, note, m1.TotalAlloc-m0.TotalAlloc, delta)
	fmt.Printf("fused/errmat-unit [%s]: %.2fs, peak +%.1f MiB\n", note, sec, float64(delta)/(1<<20))
	return nil
}
