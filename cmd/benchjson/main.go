// Command benchjson produces the machine-readable performance snapshot
// behind `make bench-json`. It times the paper-scale table 1 + figure 1
// pipeline three times against one unified artifact cache — cold (empty
// cache: full Lorenz-96 integration, field generation, compression), warm
// (every record present: a pure reduction over cached artifacts), and
// incremental (one codec variant invalidated: only its column recomputes) —
// recording wall-clock and cumulative heap allocation for each pass, and
// runs ns/op microbenchmarks for the leave-one-out RMSZ engine, the
// Lorenz-96 stepper and every study codec. The result is one JSON document
// (BENCH_PR<n>.json) that later PRs can diff mechanically with
// cmd/benchdiff.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"climcompress/internal/artifact"
	"climcompress/internal/benchjson"
	"climcompress/internal/blob"
	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	"climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	"climcompress/internal/compress/tsblob"
	"climcompress/internal/ensemble"
	"climcompress/internal/experiments"
	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/lint"
	"climcompress/internal/model"
	"climcompress/internal/par"
	"climcompress/internal/serve"
	"climcompress/internal/varcatalog"
)

func main() {
	out := flag.String("out", "BENCH_PR3.json", "output JSON path")
	members := flag.Int("members", 101, "ensemble size for the experiment timings")
	workers := flag.Int("workers", 0, "parallel worker pool width (0 = GOMAXPROCS)")
	skipExperiments := flag.Bool("micro-only", false, "skip the table1+fig1 wall-clock runs")
	skipMicro := flag.Bool("experiments-only", false, "skip the ns/op microbenchmarks")
	sweeps := flag.Int("sweeps", 3, "microbenchmark sweeps; per-entry best is kept")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs")
	memprofile := flag.String("memprofile", "", "write a heap profile on exit")
	shardBin := flag.String("shard-bin", "", "path to a climatebench binary; when set, time 1/2/4-shard supervised cold+warm runs into shard/ entries")
	shardOnly := flag.Bool("shard-only", false, "run only the shard-scale timings (requires -shard-bin)")
	shardMembers := flag.Int("shard-members", 31, "ensemble size for the shard-scale timings")
	serveBin := flag.String("serve-bin", "", "path to a climatebenchd binary; when set, load-test the daemon cold, warm and coalesced into serve/ entries")
	serveOnly := flag.Bool("serve-only", false, "run only the daemon load tests (requires -serve-bin)")
	fusedOnly := flag.Bool("fused-only", false, "run only the fused streaming-verification benchmarks (decode-compare micros + peak-heap error-matrix units)")
	lintOnly := flag.Bool("lint-only", false, "run only the climatelint whole-module wall-time entry")
	mergeWith := flag.String("merge", "", "existing snapshot whose entries are folded into the output (per-entry best), e.g. to add shard/ entries to a full bench-json run")
	flag.Parse()
	par.SetWidth(*workers)
	if *shardOnly || *serveOnly || *fusedOnly || *lintOnly {
		*skipExperiments, *skipMicro = true, true
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	rep := benchjson.NewReport()
	// Micros run first, on a clean heap: the experiment phase leaves enough
	// live memory behind that GC pacing visibly perturbs the fastest codec
	// benchmarks when they run second. Whole-suite sweeps are interleaved
	// and merged by per-entry best (see benchjson.MergeBest) so a transient
	// host-contention burst cannot poison any single entry.
	if !*skipMicro {
		if *sweeps < 1 {
			*sweeps = 1
		}
		for i := 0; i < *sweeps; i++ {
			sub := benchjson.NewReport()
			microbenchmarks(sub)
			rep.MergeBest(sub)
		}
	}
	if !*skipExperiments {
		if err := timeExperiments(rep, *members); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *shardBin != "" {
		if err := timeShardScale(rep, *shardBin, *shardMembers); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *serveBin != "" {
		if err := timeServe(rep, *serveBin); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *fusedOnly {
		if err := fusedBenchmarks(rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *lintOnly {
		if err := timeLint(rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *mergeWith != "" {
		prev, err := benchjson.ReadFile(*mergeWith)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rep.MergeBest(prev)
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d entries)\n", *out, len(rep.Entries))
}

// timeExperiments runs table1 + fig1 at paper scale on the bench grid in
// three passes over one unified artifact cache: cold (empty cache — full
// Lorenz-96 integration, field generation, compression, plus cache
// population), warm (every record present — a pure reduction over cached
// artifacts), and incremental (one codec variant invalidated — exactly its
// error-matrix column recomputes, from cached member fields). Each entry
// records wall-clock seconds and the pass's cumulative heap allocation.
func timeExperiments(rep *benchjson.Report, members int) error {
	cacheDir, err := os.MkdirTemp("", "climcache")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	passes := []struct {
		note       string
		invalidate string
	}{
		{"cold cache", ""},
		{"warm cache", ""},
		{"incremental (apax-4 invalidated)", "apax-4"},
	}
	for _, pass := range passes {
		store := artifact.Open(cacheDir)
		cfg := experiments.DefaultConfig(grid.Bench())
		cfg.Members = members
		cfg.Cache = store
		var once sync.Once
		var shared *l96.Ensemble
		cfg.L96Source = func() *l96.Ensemble {
			once.Do(func() {
				lc := l96.DefaultEnsembleConfig(members)
				shared, _ = l96.LoadOrCompute(l96.DefaultParams(), lc, store.L96Dir())
			})
			return shared
		}
		r := experiments.NewRunner(cfg, nil)
		if pass.invalidate != "" {
			r.InvalidateVariant(pass.invalidate)
		}
		total := 0.0
		var totalAlloc, maxPeak uint64
		measure := func(name string, fn func() error) error {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			hw := benchjson.WatchHeap(time.Millisecond)
			t0 := time.Now()
			err := fn()
			sec := time.Since(t0).Seconds()
			peak := hw.Stop()
			if err != nil {
				return err
			}
			runtime.ReadMemStats(&m1)
			alloc := m1.TotalAlloc - m0.TotalAlloc
			rep.AddSecondsAllocPeak("experiments/"+name, sec, pass.note, alloc, peak)
			total += sec
			totalAlloc += alloc
			if peak > maxPeak {
				maxPeak = peak
			}
			return nil
		}
		if err := measure("table1", func() error {
			if experiments.Table1() == "" {
				return fmt.Errorf("empty table 1")
			}
			return nil
		}); err != nil {
			return err
		}
		if err := measure("fig1", func() error {
			_, err := r.Fig1()
			return err
		}); err != nil {
			return err
		}
		rep.AddSecondsAllocPeak("experiments/table1+fig1", total, pass.note, totalAlloc, maxPeak)
	}
	return nil
}

// timeShardScale times the sharded multi-process runner end to end: for
// each shard count, a cold supervised run of table6 on the small grid
// against a fresh cache (the n children split the per-variable verification
// units via the lease protocol, then the parent merge-renders), followed by
// a warm rerun over the same cache (children skip everything; the render is
// a pure reduction). Each child runs with one worker, so cold-run scaling
// comes from process parallelism alone — on a >=4-core host the 4-shard
// cold pass is expected to be >=3x faster than 1-shard; on fewer cores the
// entries still pin the coordination overhead. Entries are stamped with the
// shard count as their worker count.
func timeShardScale(rep *benchjson.Report, bin string, members int) error {
	for _, n := range []int{1, 2, 4} {
		cacheDir, err := os.MkdirTemp("", "climshard")
		if err != nil {
			return err
		}
		run := func(note string) error {
			cmd := exec.Command(bin,
				"-grid", "small", "-members", fmt.Sprint(members),
				"-workers", "1", "-q", "-cachedir", cacheDir,
				"-supervise", fmt.Sprint(n), "table6")
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			t0 := time.Now()
			if err := cmd.Run(); err != nil {
				return fmt.Errorf("shard-scale %d-shard %s: %w", n, note, err)
			}
			sec := time.Since(t0).Seconds()
			rep.Entries = append(rep.Entries, benchjson.Entry{
				Name:    fmt.Sprintf("shard/supervise-%d/table6", n),
				Seconds: sec, Note: note, Workers: n,
			})
			fmt.Fprintf(os.Stderr, "shard/supervise-%d/table6 %s: %.1fs\n", n, note, sec)
			return nil
		}
		err = run("cold cache")
		if err == nil {
			err = run("warm cache")
		}
		os.RemoveAll(cacheDir)
		if err != nil {
			return err
		}
	}
	return nil
}

// serveVars is the variable mix for the daemon load tests: the shard-smoke
// subset, small enough that a cold sweep finishes in seconds but covering
// 2-D, 3-D and fill-valued variables.
const serveVars = "U,FSDSC,Z3,CCN3,SST"

// startServeDaemon launches a climatebenchd instance on an ephemeral port
// against cacheDir and waits for its -addrfile readiness signal. The
// returned stop function sends SIGINT and waits for the graceful drain.
func startServeDaemon(bin, cacheDir string) (base string, stop func() error, err error) {
	addrFile := filepath.Join(cacheDir, "climatebenchd.addr")
	cmd := exec.Command(bin,
		"-grid", "test", "-members", "9", "-vars", serveVars,
		"-q", "-cachedir", cacheDir,
		"-addr", "127.0.0.1:0", "-addrfile", addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop = func() error {
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			return err
		}
		return cmd.Wait()
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if buf, err := os.ReadFile(addrFile); err == nil && len(buf) > 0 {
			addr := strings.TrimSpace(string(buf))
			return "http://" + addr, stop, nil
		}
		if time.Now().After(deadline) {
			//lint:errdrop best-effort teardown of a daemon that never became ready
			stop()
			return "", nil, fmt.Errorf("daemon never wrote %s", addrFile)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// timeServe load-tests the verdict daemon in the three regimes that define
// its performance envelope:
//
//   - cold: every (variable, variant) pair requested once against an empty
//     cache — throughput is bounded by verification compute and the
//     admission gate;
//   - warm: the same mix re-requested thousands of times — pure
//     response-cache hits, the daemon's sustained serving rate;
//   - coalesced: one cold pair hammered by many concurrent identical
//     clients — exactly one compute, everyone else coalesces, so the run
//     measures the singleflight path.
//
// Each regime records ops/sec and client-observed p50/p99 latency.
func timeServe(rep *benchjson.Report, bin string) error {
	cacheDir, err := os.MkdirTemp("", "climserve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	base, stop, err := startServeDaemon(bin, cacheDir)
	if err != nil {
		return err
	}
	variables := strings.Split(serveVars, ",")
	variants := experiments.Variants()
	pairs := len(variables) * len(variants)
	record := func(name, note string, concurrency int, res serve.LoadResult) {
		rep.Entries = append(rep.Entries, benchjson.Entry{
			Name: name, Note: note,
			OpsPerSec: res.OpsPerSec(),
			P50Ns:     res.P50.Nanoseconds(),
			P99Ns:     res.P99.Nanoseconds(),
			Workers:   concurrency,
		})
		fmt.Fprintf(os.Stderr, "%s [%s]: %.0f verdicts/s, p50 %s, p99 %s (%d ok, %d shed, %d errors)\n",
			name, note, res.OpsPerSec(), res.P50, res.P99, res.OK, res.Shed, res.Errors)
	}

	// Cold: one request per pair; every request is a fresh computation.
	res, err := serve.Load(serve.LoadSpec{
		URL: base, Variables: variables, Variants: variants,
		Total: pairs, Concurrency: 8,
	})
	if err == nil && res.OK != pairs {
		err = fmt.Errorf("cold sweep: %d/%d ok (%d shed, %d errors)", res.OK, pairs, res.Shed, res.Errors)
	}
	if err != nil {
		//lint:errdrop best-effort teardown after a failed load run
		stop()
		return err
	}
	record("serve/verdict", "cold cache", 8, res)

	// Warm: the whole mix is response-cache hits now.
	res, err = serve.Load(serve.LoadSpec{
		URL: base, Variables: variables, Variants: variants,
		Total: 20000, Concurrency: 8,
	})
	if err != nil {
		//lint:errdrop best-effort teardown after a failed load run
		stop()
		return err
	}
	record("serve/verdict", "warm cache", 8, res)
	if err := stop(); err != nil {
		return fmt.Errorf("daemon shutdown after warm run: %w", err)
	}

	// Coalesced: fresh cache and daemon, one pair, 100 concurrent clients.
	coldDir, err := os.MkdirTemp("", "climserve-coalesce")
	if err != nil {
		return err
	}
	defer os.RemoveAll(coldDir)
	base, stop, err = startServeDaemon(bin, coldDir)
	if err != nil {
		return err
	}
	res, err = serve.Load(serve.LoadSpec{
		URL: base, Variables: []string{"U"}, Variants: []string{"fpzip-24"},
		Total: 100, Concurrency: 100,
	})
	if err == nil && res.OK != 100 {
		err = fmt.Errorf("coalesced run: %d/100 ok (%d shed, %d errors)", res.OK, res.Shed, res.Errors)
	}
	if err != nil {
		//lint:errdrop best-effort teardown after a failed load run
		stop()
		return err
	}
	record("serve/verdict", "coalesced (100 identical, cold)", 100, res)
	return stop()
}

// timeLint records how long `climatelint ./...` takes over the whole
// module — load (parse + type-check through the source importer) plus
// all analyzers — as one informational lint/ entry. Not gated by
// benchdiff (wall-clock over ~40 packages is too host-sensitive for a
// percentage gate); the entry exists so a superlinear blowup in the
// CFG/dataflow engine is visible in the snapshot diff, not discovered
// as a mysteriously slow `make verify`. The run doubles as a clean-repo
// assertion: any unsuppressed finding fails the snapshot.
func timeLint(rep *benchjson.Report) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	t0 := time.Now()
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(filepath.Join(loader.ModuleDir, "..."))
	if err != nil {
		return err
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	sec := time.Since(t0).Seconds()
	if len(diags) != 0 {
		return fmt.Errorf("lint: %d unsuppressed finding(s) in the module; snapshot refused", len(diags))
	}
	rep.Entries = append(rep.Entries, benchjson.Entry{
		Name:    "lint/climatelint-repo",
		Seconds: sec,
		Note:    fmt.Sprintf("load+analyze, %d packages, %d analyzers", len(pkgs), len(lint.Analyzers())),
		Workers: 1,
	})
	fmt.Fprintf(os.Stderr, "lint/climatelint-repo: %.2fs (%d packages)\n", sec, len(pkgs))
	return nil
}

// synthEnsemble builds a deterministic synthetic ensemble on the test grid
// for the RMSZ engine benchmarks (mirrors the top-level ablation harness).
func synthEnsemble(nm int) []*field.Field {
	g := grid.Test()
	fields := make([]*field.Field, nm)
	x := uint64(99)
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%10000)/5000 - 1
	}
	for m := range fields {
		f := field.New("X", "1", g, false)
		for i := range f.Data {
			f.Data[i] = float32(10 + float64(i%7) + next())
		}
		fields[m] = f
	}
	return fields
}

// benchField synthesizes one realistic 3-D variable for codec throughput.
func benchField() ([]float32, compress.Shape) {
	g := grid.Small()
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.EnsembleConfig{
		Members: 3, Dt: 0.002, SpinupSteps: 1000,
		DivergeSteps: 4000, CalibSteps: 2000, Eps: 1e-14,
	})
	catalog := varcatalog.Default()
	gen := model.NewGenerator(g, catalog, ens)
	_, idx, _ := varcatalog.ByName(catalog, "U")
	f := gen.Field(idx, 0)
	return f.Data, compress.Shape{NLev: f.NLev, NLat: g.NLat, NLon: g.NLon}
}

func microbenchmarks(rep *benchjson.Report) {
	fields := synthEnsemble(31)
	rep.AddBenchmark("rmsz/build-31x"+fmt.Sprint(fields[0].Len()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ensemble.Build(fields); err != nil {
				b.Fatal(err)
			}
		}
	})
	vs, err := ensemble.Build(fields)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data := vs.Original(0)
	rep.AddBenchmark("rmsz/rmsz-of-member", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if z := vs.RMSZOf(0, data); math.IsNaN(z) {
				b.Fatal("NaN RMSZ")
			}
		}
	})
	members := make([][]float32, vs.Members())
	for m := range members {
		members[m] = vs.Original(m)
	}
	rep.AddBenchmark("rmsz/scores-full-ensemble", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := ensemble.RMSZScores(members, vs.FillMask); len(s) != len(members) {
				b.Fatal("short score vector")
			}
		}
	})

	m := l96.New(l96.DefaultParams())
	s := m.InitialState(0)
	rep.AddBenchmark("l96/step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Step(s, 0.002)
		}
	})

	fdata, shape := benchField()
	// All study variants plus the lossless baselines and the registry
	// entries BENCH_PR1.json lacked (fpzip-32, grib2-simple). The loops
	// drive the Into paths with reused buffers — the steady-state shape of
	// the PVT inner loop — so allocs/op reflects pooling, not first-call
	// warm-up.
	variants := append(experiments.Variants(), "nc", "nc-noshuffle", "fpzip-32", "grib2-simple")
	for _, name := range variants {
		var codec compress.Codec
		if name == "grib2" {
			codec = grib2.New(2)
		} else {
			c, err := compress.New(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			codec = c
		}
		buf, err := compress.CompressInto(codec, nil, fdata, shape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		out, err := compress.DecompressInto(codec, nil, buf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		// Codec loops are serial regardless of GOMAXPROCS.
		rep.AddBenchmarkWorkers("codec/"+name+"/compress", 1, func(b *testing.B) {
			b.SetBytes(int64(4 * len(fdata)))
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = compress.CompressInto(codec, buf[:0], fdata, shape)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.AddBenchmarkWorkers("codec/"+name+"/decompress", 1, func(b *testing.B) {
			b.SetBytes(int64(4 * len(fdata)))
			for i := 0; i < b.N; i++ {
				var err error
				out, err = compress.DecompressInto(codec, out, buf)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// tsblob's third verb: iterating values straight off the compressed
	// stream with no decode buffer. Bytes/op is the logical field size, so
	// the entry is comparable to codec/tsblob/decompress.
	tsStream, err := compress.CompressInto(tsblob.New(), nil, fdata, shape)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: tsblob: %v\n", err)
		os.Exit(1)
	}
	rep.AddBenchmarkWorkers("codec/tsblob/iterate", 1, func(b *testing.B) {
		b.SetBytes(int64(4 * len(fdata)))
		for i := 0; i < b.N; i++ {
			xc, err := tsblob.Iter(tsStream)
			if err != nil {
				b.Fatal(err)
			}
			var sum float32
			it := xc.Iter()
			for it.Next() {
				sum += it.Value()
			}
			if it.Err() != nil {
				b.Fatal(it.Err())
			}
			if math.IsNaN(float64(sum)) {
				b.Fatal("NaN checksum")
			}
		}
	})

	recordDecodeBenchmarks(rep)
	serveInprocBenchmark(rep)
	fusedMicros(rep, fdata, shape)
}

// recordDecodeBenchmarks compares the two artifact record formats on the
// cache's hottest payload shape, a per-member score record (two float64
// vectors at paper-scale ensemble size): v1 is a tagged scalar stream
// decoded into freshly allocated slices, v2 is a columnar blob container
// whose vectors are read in place through validated views.
func recordDecodeBenchmarks(rep *benchjson.Report) {
	const members = 101
	rmsz := make([]float64, members)
	enmax := make([]float64, members)
	for i := range rmsz {
		rmsz[i] = 1 + float64(i)/members
		enmax[i] = 2 - float64(i)/members
	}
	var e artifact.Enc
	e.Floats(rmsz).Floats(enmax)
	v1 := e.Bytes()
	w := blob.GetWriter()
	w.AddF64s(rmsz)
	w.AddF64s(enmax)
	v2 := w.AppendTo(nil)
	blob.PutWriter(w)

	rep.AddBenchmarkWorkers("record/scores-decode-v1", 1, func(b *testing.B) {
		b.SetBytes(int64(len(v1)))
		for i := 0; i < b.N; i++ {
			d := artifact.NewDec(v1)
			r := d.Floats()
			en := d.Floats()
			if d.Close() != nil || len(r) != members || len(en) != members {
				b.Fatal("v1 decode failed")
			}
		}
	})
	rep.AddBenchmarkWorkers("record/scores-decode-v2", 1, func(b *testing.B) {
		b.SetBytes(int64(len(v2)))
		var sum float64
		for i := 0; i < b.N; i++ {
			bb, err := blob.Open(v2)
			if err != nil {
				b.Fatal(err)
			}
			rv, err1 := bb.F64(0)
			ev, err2 := bb.F64(1)
			if err1 != nil || err2 != nil || rv.Len() != members || ev.Len() != members {
				b.Fatal("v2 open failed")
			}
			sum += rv.At(members-1) + ev.At(0)
		}
		if math.IsNaN(sum) {
			b.Fatal("NaN checksum")
		}
	})
}

// inprocOnce builds the in-process verdict server once per benchjson run
// (New integrates the chaotic core, so it is shared across sweeps).
var (
	inprocOnce sync.Once
	inprocSrv  *serve.Server
	inprocErr  error
)

func inprocServer() (*serve.Server, error) {
	inprocOnce.Do(func() {
		cfg := experiments.DefaultConfig(grid.Test())
		cfg.Members = 9
		cfg.L96 = l96.EnsembleConfig{
			Members: 9, Dt: 0.002, SpinupSteps: 1000,
			DivergeSteps: 6000, CalibSteps: 3000, Eps: 1e-14,
		}
		cfg.Variables = []string{"U"}
		r := experiments.NewRunner(cfg, nil)
		inprocSrv, inprocErr = serve.New(serve.Config{Runner: r})
	})
	return inprocSrv, inprocErr
}

// nopBody is a resettable request body so the benchmark request carries no
// per-op reader allocation of its own.
type nopBody struct{ *bytes.Reader }

func (nopBody) Close() error { return nil }

// nopResponseWriter swallows the response so the entry measures the
// handler, not an HTTP transport.
type nopResponseWriter struct {
	h    http.Header
	code int
}

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopResponseWriter) WriteHeader(code int)        { w.code = code }

// serveInprocBenchmark pins the warm verdict hot path — response-cache hit,
// no admission, no singleflight — as in-process ns/op and allocs/op. The
// serve/ load-test entries measure the same path through a real socket;
// this entry isolates the handler so an allocation regression shows up as
// an exact counter, not latency noise.
func serveInprocBenchmark(rep *benchjson.Report) {
	srv, err := inprocServer()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: inproc server: %v\n", err)
		os.Exit(1)
	}
	h := srv.Handler()
	body := []byte(`{"variable":"U","variant":"tsblob"}`)
	rd := bytes.NewReader(body)
	req, err := http.NewRequest("POST", "/verdict", nopBody{rd})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: inproc server: %v\n", err)
		os.Exit(1)
	}
	// One real request computes the verdict and fills the response cache.
	warm := &nopResponseWriter{h: make(http.Header)}
	h.ServeHTTP(warm, req)
	if warm.code != 0 && warm.code != http.StatusOK {
		fmt.Fprintf(os.Stderr, "benchjson: inproc warm-up request returned %d\n", warm.code)
		os.Exit(1)
	}
	rep.AddBenchmarkWorkers("serve/verdict-inproc", 1, func(b *testing.B) {
		w := &nopResponseWriter{h: make(http.Header)}
		for i := 0; i < b.N; i++ {
			rd.Reset(body)
			h.ServeHTTP(w, req)
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("warm verdict returned %d", w.code)
			}
		}
	})
}

// writeHeapProfile snapshots the heap into path.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	}
	// The profile was just written; a failed Close can drop its tail
	// silently, so it is checked rather than deferred. (errdrop)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: close %s: %v\n", path, err)
	}
}
