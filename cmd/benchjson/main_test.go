package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestMain lets the compiled test binary stand in for the real command:
// with the re-exec variable set it runs main() on its arguments instead
// of the test suite. The smoke tests below use this to pin the binary's
// stream discipline — stdout stays clean of diagnostics and progress —
// without a separate `go build` step.
func TestMain(m *testing.M) {
	if os.Getenv("BENCHJSON_SMOKE_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runSelf re-executes this test binary as benchjson with the given
// arguments, returning the captured streams and exit code.
func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BENCHJSON_SMOKE_RUN_MAIN=1")
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec: %v", err)
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

// TestStdoutCleanOnBadFlag: a flag-parse error must land on stderr only.
// benchjson's snapshot can be requested on stdout (-out /dev/stdout), so
// any diagnostic leaking there corrupts machine-readable output.
func TestStdoutCleanOnBadFlag(t *testing.T) {
	stdout, stderr, code := runSelf(t, "-definitely-not-a-flag")
	if code == 0 {
		t.Error("bad flag exited 0")
	}
	if stdout != "" {
		t.Errorf("bad flag wrote to stdout:\n%s", stdout)
	}
	if stderr == "" {
		t.Error("bad flag produced no stderr diagnostic")
	}
}

// TestStdoutCleanOnNoopRun: the cheapest real run (both phases skipped)
// must write its snapshot file and keep stdout empty — the "wrote ..."
// progress line belongs on stderr.
func TestStdoutCleanOnNoopRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "snap.json")
	stdout, stderr, code := runSelf(t, "-micro-only", "-experiments-only", "-out", out)
	if code != 0 {
		t.Fatalf("no-op run exited %d, stderr:\n%s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("no-op run wrote to stdout:\n%s", stdout)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("snapshot file not written: %v", err)
	}
}
