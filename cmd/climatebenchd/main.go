// Command climatebenchd serves verification verdicts over HTTP: the
// daemon twin of `climatebench -verdict`. It owns one experiments.Runner
// (grid, ensemble, artifact cache), optionally preloads every variable's
// ensemble statistics at startup, and then answers POST /verdict queries
// through internal/serve's coalescing and admission machinery.
//
// Usage:
//
//	climatebenchd [flags]                      # run the daemon
//	climatebenchd -call URL -var V -variant C  # built-in client, one query
//	climatebenchd -call URL -stats             # built-in client, GET /stats
//
// Endpoints:
//
//	POST /verdict  {"variable":"U","variant":"fpzip-24","format":"json|binary"}
//	GET  /stats    cache + serving counters (JSON)
//	GET  /healthz  liveness
//
// The built-in client exists so the serve-smoke CI gate needs no curl: it
// prints the raw response body to stdout, byte-comparable to the batch
// CLI's output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"climcompress/internal/artifact"
	"climcompress/internal/experiments"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/par"
	"climcompress/internal/serve"
)

var (
	addr     = flag.String("addr", "127.0.0.1:8437", "listen address; use 127.0.0.1:0 for an ephemeral port with -addrfile")
	addrFile = flag.String("addrfile", "", "write the bound address to this file once listening (readiness signal for harnesses)")
	gridName = flag.String("grid", "small", "grid preset (test|small|bench|ne30)")
	members  = flag.Int("members", 101, "ensemble size")
	workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	seed     = flag.Uint64("seed", 2014, "seed for test-member selection")
	vars     = flag.String("vars", "", "comma-separated variable subset (default: all 170)")
	cacheDir = flag.String("cachedir", ".climcache", "artifact cache directory (empty disables); verdicts computed by the daemon persist here")
	noCache  = flag.Bool("nocache", false, "disable the artifact cache")
	preload  = flag.Bool("preload", true, "build every variable's ensemble statistics before accepting traffic")
	inflight = flag.Int("inflight", 0, "max concurrent verdict computations (0 = GOMAXPROCS)")
	queue    = flag.Int("queue", 0, "max computations queued behind the inflight slots (0 = 4x inflight); overflow is shed with 429")
	retry    = flag.Int("retryafter", 1, "Retry-After seconds advertised on shed responses")
	quiet    = flag.Bool("q", false, "suppress startup progress lines")

	callURL   = flag.String("call", "", "client mode: base URL of a running daemon; POST one verdict (or -stats) and print the response body")
	callVar   = flag.String("var", "", "client mode: variable name")
	callVari  = flag.String("variant", "", "client mode: codec variant")
	callForm  = flag.String("format", "json", "client mode: response format (json|binary)")
	callStats = flag.Bool("stats", false, "client mode: GET /stats instead of a verdict")
)

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "climatebenchd: unexpected arguments; this daemon takes only flags")
		flag.Usage()
		os.Exit(2)
	}
	if *callURL != "" {
		os.Exit(runCall())
	}
	os.Exit(runDaemon())
}

// logf writes startup progress to stderr (stdout stays clean for harnesses
// that capture it).
func logf(format string, args ...any) {
	if !*quiet {
		fmt.Fprintf(os.Stderr, "climatebenchd: "+format+"\n", args...)
	}
}

func runDaemon() int {
	par.SetWidth(*workers)
	if *noCache {
		*cacheDir = ""
	}
	store := artifact.Open(*cacheDir)

	g := grid.ByName(*gridName)
	if g == nil {
		fmt.Fprintf(os.Stderr, "climatebenchd: unknown grid %q\n", *gridName)
		return 2
	}
	cfg := experiments.DefaultConfig(g)
	cfg.Members = *members
	cfg.Workers = *workers
	cfg.Seed = *seed
	if *vars != "" {
		cfg.Variables = strings.Split(*vars, ",")
	}
	cfg.Cache = store
	var l96Once sync.Once
	var sharedL96 *l96.Ensemble
	cfg.L96Source = func() *l96.Ensemble {
		l96Once.Do(func() {
			lc := l96.DefaultEnsembleConfig(*members)
			sharedL96, _ = l96.LoadOrCompute(l96.DefaultParams(), lc, store.L96Dir())
		})
		return sharedL96
	}
	runner := experiments.NewRunner(cfg, nil)

	start := time.Now()
	srv, err := serve.New(serve.Config{
		Runner:        runner,
		MaxInflight:   *inflight,
		MaxQueue:      *queue,
		RetryAfterSec: *retry,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebenchd: %v\n", err)
		return 1
	}
	logf("key table ready: %d variables x %d variants in %.1fs",
		len(runner.VariableNames()), len(experiments.Variants()), time.Since(start).Seconds())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *preload {
		start = time.Now()
		n, err := srv.Preload(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "climatebenchd: preload: %v\n", err)
			return 1
		}
		logf("preloaded ensemble statistics for %d variables in %.1fs", n, time.Since(start).Seconds())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebenchd: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "climatebenchd: writing -addrfile: %v\n", err)
			return 1
		}
	}
	logf("listening on %s", bound)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve only returns on listener failure here; Shutdown's
		// ErrServerClosed arrives through the other branch.
		fmt.Fprintf(os.Stderr, "climatebenchd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	logf("signal received; draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "climatebenchd: shutdown: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "climatebenchd: %v\n", err)
		return 1
	}
	st := srv.Stats()
	logf("drained: %d requests (%d cache hits, %d coalesced, %d computes, %d shed)",
		st.Serve.Requests, st.Serve.RespCacheHits, st.Serve.Coalesced, st.Serve.Computes, st.Serve.Shed)
	return 0
}

// runCall is the built-in client: one request, raw body to stdout. The
// serve-smoke gate pipes this next to `climatebench -verdict` output and
// compares bytes, so nothing but the response body may reach stdout.
func runCall() int {
	base := strings.TrimSuffix(*callURL, "/")
	var resp *http.Response
	var err error
	if *callStats {
		resp, err = http.Get(base + "/stats")
	} else {
		if *callVar == "" || *callVari == "" {
			fmt.Fprintln(os.Stderr, "climatebenchd: -call needs -var and -variant (or -stats)")
			return 2
		}
		body := fmt.Sprintf(`{"variable":%q,"variant":%q,"format":%q}`, *callVar, *callVari, *callForm)
		resp, err = http.Post(base+"/verdict", serve.ContentTypeJSON, strings.NewReader(body))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatebenchd: %v\n", err)
		return 1
	}
	_, copyErr := io.Copy(os.Stdout, resp.Body)
	//lint:errdrop read side; the body was fully copied and a response Close cannot lose data
	resp.Body.Close()
	if copyErr != nil {
		fmt.Fprintf(os.Stderr, "climatebenchd: reading response: %v\n", copyErr)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "climatebenchd: status %s\n", resp.Status)
		return 1
	}
	return 0
}
