// Command climatelint runs this repo's static-analysis pass: the
// analyzers in internal/lint, from syntactic determinism checks through
// the CFG/dataflow engine's concurrency and contract proofs. It is
// stdlib-only — packages are loaded with go/parser and type-checked with
// go/types, so the tool needs nothing beyond the Go toolchain already
// required to build the repo.
//
// Usage:
//
//	climatelint [-list] [-json] [-baseline lint-baseline.json] pattern...
//
// A pattern is a package directory, optionally ending in /... to cover
// the whole subtree; "./..." from the module root lints every package.
//
// -json prints every finding (including suppressed ones, flagged) as a
// JSON array on stdout; nothing else is written there, so the output can
// be piped or checked in directly as a baseline:
//
//	climatelint -json ./... > lint-baseline.json
//
// -baseline compares the run against such a file and fails only on
// findings not present in it (matched by file/analyzer/message, so line
// drift does not resurrect old findings). This lets a new analyzer land
// before every annotation it demands has been written.
//
// Exit status: 0 clean, 1 findings reported (new findings, in baseline
// mode), 2 packages failed to load or bad usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"climcompress/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "write findings as a JSON array on stdout")
	baselinePath := flag.String("baseline", "", "fail only on findings absent from this baseline `file`")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: climatelint [-list] [-json] [-baseline file] pattern...")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "climatelint: %v\n", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fail(err)
	}

	all := lint.ToJSON(loader.ModuleDir, lint.RunAll(pkgs, analyzers))

	// The failing set: every unsuppressed finding, narrowed to the ones
	// the baseline does not already account for when -baseline is given.
	var failing []lint.JSONDiagnostic
	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fail(err)
		}
		failing = lint.NewFindings(all, base)
	} else {
		failing = lint.NewFindings(all, nil)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fail(err)
		}
	} else {
		for _, d := range failing {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(failing) > 0 {
		what := "finding(s)"
		if *baselinePath != "" {
			what = "new finding(s) not in baseline"
		}
		fmt.Fprintf(os.Stderr, "climatelint: %d %s in %d package(s)\n", len(failing), what, len(pkgs))
		os.Exit(1)
	}
}
