// Command climatelint runs this repo's static-analysis pass: five
// analyzers that mechanize the pipeline's determinism and
// resource-pairing invariants (see internal/lint). It is stdlib-only —
// packages are loaded with go/parser and type-checked with go/types, so
// the tool needs nothing beyond the Go toolchain already required to
// build the repo.
//
// Usage:
//
//	climatelint [-list] pattern...
//
// A pattern is a package directory, optionally ending in /... to cover
// the whole subtree; "./..." from the module root lints every package.
// Exit status: 0 clean, 1 findings reported, 2 packages failed to load.
package main

import (
	"flag"
	"fmt"
	"os"

	"climcompress/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: climatelint [-list] pattern...")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatelint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatelint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "climatelint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "climatelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
