package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The run* functions are exercised directly (they are ordinary functions
// returning errors); stdout output is not asserted beyond side effects.

func TestGenCompressInspectVerifyFlow(t *testing.T) {
	dir := t.TempDir()
	h := filepath.Join(dir, "h.cdf")
	c := filepath.Join(dir, "c.cdf")
	if err := runGen([]string{"-out", h, "-grid", "test", "-vars", "TS,SST"}); err != nil {
		t.Fatal(err)
	}
	if err := runCompress([]string{"-in", h, "-out", c, "-codec", "fpzip-32"}); err != nil {
		t.Fatal(err)
	}
	if err := runInspect([]string{c}); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-orig", h, "-recon", c}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFailsOnBadReconstruction(t *testing.T) {
	dir := t.TempDir()
	h := filepath.Join(dir, "h.cdf")
	c := filepath.Join(dir, "c.cdf")
	if err := runGen([]string{"-out", h, "-grid", "test", "-vars", "TS"}); err != nil {
		t.Fatal(err)
	}
	if err := runCompress([]string{"-in", h, "-out", c, "-codec", "apax-7"}); err != nil {
		t.Fatal(err)
	}
	err := runVerify([]string{"-orig", h, "-recon", c})
	if err == nil || !strings.Contains(err.Error(), "fail") {
		t.Fatalf("aggressive codec should fail verification, got %v", err)
	}
}

func TestConvertFlow(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 2; i++ {
		p := filepath.Join(dir, "h"+string(rune('0'+i))+".cdf")
		if err := runGen([]string{"-out", p, "-grid", "test", "-vars", "TS", "-member", "0"}); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	out := filepath.Join(dir, "series")
	args := append([]string{"-out", out, "-codec", "nc"}, paths...)
	if err := runConvert(args); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "series_TS.cdf")); err != nil {
		t.Fatal("series file missing")
	}
}

func TestExportImportFlow(t *testing.T) {
	dir := t.TempDir()
	h := filepath.Join(dir, "h.cdf")
	nc := filepath.Join(dir, "h.nc")
	back := filepath.Join(dir, "back.cdf")
	if err := runGen([]string{"-out", h, "-grid", "test", "-vars", "TS"}); err != nil {
		t.Fatal(err)
	}
	if err := runExport([]string{"-in", h, "-out", nc}); err != nil {
		t.Fatal(err)
	}
	if err := runImport([]string{"-in", nc, "-out", back}); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-orig", h, "-recon", back}); err != nil {
		t.Fatalf("NetCDF round trip not lossless: %v", err)
	}
}

func TestRestartGen(t *testing.T) {
	dir := t.TempDir()
	r := filepath.Join(dir, "r.cdf")
	if err := runGen([]string{"-out", r, "-grid", "test", "-vars", "T,U", "-restart"}); err != nil {
		t.Fatal(err)
	}
	c := filepath.Join(dir, "c.cdf")
	if err := runCompress([]string{"-in", r, "-out", c, "-codec", "fpzip64-64"}); err != nil {
		t.Fatal(err)
	}
	if err := runInspect([]string{c}); err != nil {
		t.Fatal(err)
	}
}

func TestMapFlow(t *testing.T) {
	dir := t.TempDir()
	h := filepath.Join(dir, "h.cdf")
	c := filepath.Join(dir, "c.cdf")
	if err := runGen([]string{"-out", h, "-grid", "test", "-vars", "SST"}); err != nil {
		t.Fatal(err)
	}
	if err := runMap([]string{"-in", h, "-var", "SST", "-width", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := runCompress([]string{"-in", h, "-out", c, "-codec", "apax-4"}); err != nil {
		t.Fatal(err)
	}
	if err := runMap([]string{"-in", h, "-var", "SST", "-diff", c}); err != nil {
		t.Fatal(err)
	}
}

func TestArgumentValidation(t *testing.T) {
	if err := runCompress([]string{"-in", "x"}); err == nil {
		t.Error("compress without -out should error")
	}
	if err := runVerify([]string{"-orig", "x"}); err == nil {
		t.Error("verify without -recon should error")
	}
	if err := runConvert([]string{"-codec", "nc"}); err == nil {
		t.Error("convert without -out should error")
	}
	if err := runMap([]string{"-in", "x"}); err == nil {
		t.Error("map without -var should error")
	}
	if err := runExport([]string{}); err == nil {
		t.Error("export without args should error")
	}
	if err := runGen([]string{"-grid", "nope", "-out", filepath.Join(t.TempDir(), "x.cdf")}); err == nil {
		t.Error("unknown grid should error")
	}
}
