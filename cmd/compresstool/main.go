// Command compresstool works with .cdf datasets (the repository's
// NetCDF-like container): it generates synthetic history files, rewrites
// them with any codec (per-variable overrides supported), inspects achieved
// compression ratios, and verifies a reconstructed file against its
// original with the paper's §4.2 metrics.
//
// Usage:
//
//	compresstool gen      -out history.cdf [-grid bench] [-member 0] [-vars U,T,...]
//	compresstool compress -in a.cdf -out b.cdf -codec fpzip-24 [-per U=fpzip-32,SST=grib2]
//	compresstool inspect  file.cdf
//	compresstool verify   -orig a.cdf -recon b.cdf
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"climcompress/internal/cdf"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	_ "climcompress/internal/compress/tsblob"
	"climcompress/internal/convert"
	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/metrics"
	"climcompress/internal/model"
	"climcompress/internal/par"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
	"climcompress/internal/visualize"
)

func main() {
	workers := flag.Int("workers", 0, "parallel worker pool width (0 = GOMAXPROCS)")
	cpuprof := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprof := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = usage
	flag.Parse()
	par.SetWidth(*workers)
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	if *cpuprof != "" {
		f, perr := os.Create(*cpuprof)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "compresstool: %v\n", perr)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
	}
	var err error
	switch args[0] {
	case "gen":
		err = runGen(args[1:])
	case "compress":
		err = runCompress(args[1:])
	case "inspect":
		err = runInspect(args[1:])
	case "verify":
		err = runVerify(args[1:])
	case "convert":
		err = runConvert(args[1:])
	case "map":
		err = runMap(args[1:])
	case "export":
		err = runExport(args[1:])
	case "import":
		err = runImport(args[1:])
	default:
		usage()
	}
	// Flushed explicitly (not deferred): os.Exit below skips defers.
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if *memprof != "" {
		writeHeapProfile(*memprof)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "compresstool: %v\n", err)
		os.Exit(1)
	}
}

// writeHeapProfile snapshots the heap into path.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compresstool: %v\n", err)
		return
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "compresstool: %v\n", err)
	}
	// The profile was just written; a failed Close can drop its tail
	// silently, so it is checked rather than deferred. (errdrop)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "compresstool: close %s: %v\n", path, err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  compresstool gen      -out history.cdf [-grid bench] [-member 0] [-vars U,T]
  compresstool compress -in a.cdf -out b.cdf -codec fpzip-24 [-per V=codec,...]
  compresstool inspect  file.cdf
  compresstool verify   -orig a.cdf -recon b.cdf
  compresstool convert  -out dir/ -codec fpzip-24 [-per V=codec] history1.cdf history2.cdf ...
  compresstool map      -in file.cdf -var U [-level N] [-diff recon.cdf]
  compresstool export   -in file.cdf -out file.nc     (NetCDF classic, ncdump-readable)
  compresstool import   -in file.nc  -out file.cdf [-codec nc]`)
	os.Exit(2)
}

// runExport writes a dataset as a NetCDF classic file for the standard
// toolchain (ncdump, xarray, NCO).
func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "", "input .cdf path")
	out := fs.String("out", "", "output .nc path")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("export requires -in and -out")
	}
	f, err := cdf.Open(*in)
	if err != nil {
		return err
	}
	if err := f.ExportNetCDFFile(*out); err != nil {
		return err
	}
	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%d bytes, NetCDF classic)\n", *out, st.Size())
	return nil
}

// runImport converts a NetCDF classic file into the container format,
// optionally compressing it on the way in.
func runImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	in := fs.String("in", "", "input .nc path")
	out := fs.String("out", "", "output .cdf path")
	codec := fs.String("codec", "raw", "codec registry name for the stored payloads")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("import requires -in and -out")
	}
	f, err := cdf.ImportNetCDFFile(*in)
	if err != nil {
		return err
	}
	if err := f.WriteFile(*out, cdf.WriteOptions{Codec: *codec}); err != nil {
		return err
	}
	fmt.Printf("imported %d variables into %s (codec %s)\n", len(f.Vars), *out, *codec)
	return nil
}

// runMap renders an ASCII map of a variable, or an error map against a
// reconstructed file (the §6 visualization concern).
func runMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	in := fs.String("in", "", "dataset path")
	varName := fs.String("var", "", "variable to render")
	level := fs.Int("level", 0, "vertical level, 1-based (0 = surface)")
	diff := fs.String("diff", "", "reconstructed dataset to difference against")
	width := fs.Int("width", 72, "map width in characters")
	fs.Parse(args)
	if *in == "" || *varName == "" {
		return fmt.Errorf("map requires -in and -var")
	}
	load := func(path string) (*field.Field, error) {
		ds, err := cdf.Open(path)
		if err != nil {
			return nil, err
		}
		v, ok := ds.Var(*varName)
		if !ok {
			return nil, fmt.Errorf("%s: variable %q missing", path, *varName)
		}
		data, err := ds.ReadVar(*varName)
		if err != nil {
			return nil, err
		}
		nd := len(v.Dims)
		if nd < 2 {
			return nil, fmt.Errorf("variable %q is not a map", *varName)
		}
		nlat := ds.Dims[v.Dims[nd-2]].Len
		nlon := ds.Dims[v.Dims[nd-1]].Len
		nlev := 1
		for _, d := range v.Dims[:nd-2] {
			nlev *= ds.Dims[d].Len
		}
		g := grid.New("file", nlat, nlon, max(nlev, 1))
		f := field.New(*varName, attrValue(v.Attrs, "units"), g, nlev > 1)
		copy(f.Data, data)
		f.HasFill, f.Fill = v.HasFill, v.Fill
		return f, nil
	}
	orig, err := load(*in)
	if err != nil {
		return err
	}
	opts := visualize.Options{Width: *width, Level: *level}
	if *diff == "" {
		fmt.Print(visualize.RenderMap(orig, opts))
		return nil
	}
	recon, err := load(*diff)
	if err != nil {
		return err
	}
	out, err := visualize.RenderDiff(orig, recon, opts)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func attrValue(attrs []cdf.Attr, name string) string {
	for _, a := range attrs {
		if a.Name == name {
			return a.Value
		}
	}
	return ""
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runConvert performs the §1 workflow: time-slice history files to
// compressed per-variable time-series files.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("out", "", "output directory for series files")
	codec := fs.String("codec", "nc", "default codec registry name")
	per := fs.String("per", "", "per-variable overrides: V1=codec,V2=codec")
	varsFlag := fs.String("vars", "", "comma-separated variable subset")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("convert requires -out and at least one history file")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	opts := convert.Options{Codec: *codec, OutDir: *out, PerVar: map[string]string{}}
	if *per != "" {
		for _, kv := range strings.Split(*per, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -per entry %q", kv)
			}
			opts.PerVar[parts[0]] = parts[1]
		}
	}
	if *varsFlag != "" {
		opts.Variables = strings.Split(*varsFlag, ",")
	}
	res, err := convert.Convert(fs.Args(), opts)
	if err != nil {
		return err
	}
	t := &report.Table{Headers: []string{"Variable", "codec", "CR", "file"}}
	for name, vr := range res.PerVariable {
		t.AddRow(name, vr.Codec, report.Fix(vr.CR, 3), vr.Path)
	}
	fmt.Print(t.String())
	fmt.Printf("converted %d variables × %d slices; payload ratio %.3f (%.1f:1)\n",
		res.Variables, res.TimeSlices, res.Ratio(), 1/res.Ratio())
	return nil
}

// runGen synthesizes one history-file time slice.
func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "history.cdf", "output path")
	gridName := fs.String("grid", "bench", "grid preset")
	member := fs.Int("member", 0, "ensemble member to generate")
	vars := fs.String("vars", "", "comma-separated variable subset (default: all)")
	restart := fs.Bool("restart", false, "write full double-precision restart-file state instead of a float32 history file")
	fs.Parse(args)

	g := grid.ByName(*gridName)
	if g == nil {
		return fmt.Errorf("unknown grid %q", *gridName)
	}
	catalog := varcatalog.Default()
	if *vars != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*vars, ",") {
			want[n] = true
		}
		var sub []varcatalog.Spec
		for _, s := range catalog {
			if want[s.Name] {
				sub = append(sub, s)
			}
		}
		catalog = sub
	}
	nm := *member + 1
	if nm < 3 {
		nm = 3
	}
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.DefaultEnsembleConfig(nm))
	gen := model.NewGenerator(g, catalog, ens)

	f := cdf.New()
	f.GlobalAttr("source", "climcompress synthetic CAM history")
	f.GlobalAttr("grid", g.Name)
	f.GlobalAttr("member", fmt.Sprint(*member))
	lev := f.AddDim("lev", g.NLev)
	lat := f.AddDim("lat", g.NLat)
	lon := f.AddDim("lon", g.NLon)
	for idx, spec := range catalog {
		dims := []int{lat, lon}
		if spec.ThreeD {
			dims = []int{lev, lat, lon}
		}
		if *restart {
			if spec.HasFill {
				continue // the Float64 path carries no fill values
			}
			_, data, _ := gen.Field64(idx, *member)
			if _, err := f.AddVar64(spec.Name, dims, data, cdf.Attr{Name: "units", Value: spec.Units}); err != nil {
				return err
			}
			continue
		}
		fl := gen.Field(idx, *member)
		v, err := f.AddVar(spec.Name, dims, fl.Data, cdf.Attr{Name: "units", Value: spec.Units})
		if err != nil {
			return err
		}
		if fl.HasFill {
			v.HasFill = true
			v.Fill = fl.Fill
		}
	}
	if err := f.WriteFile(*out, cdf.WriteOptions{Codec: "raw"}); err != nil {
		return err
	}
	kind := "history"
	if *restart {
		kind = "restart (float64)"
	}
	fmt.Printf("wrote %s: %d %s variables on grid %s\n", *out, len(f.Vars), kind, g)
	return nil
}

// runCompress rewrites a dataset with a codec.
func runCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "input path")
	out := fs.String("out", "", "output path")
	codec := fs.String("codec", "nc", "default codec registry name")
	per := fs.String("per", "", "per-variable overrides: V1=codec,V2=codec")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("compress requires -in and -out")
	}
	f, err := cdf.Open(*in)
	if err != nil {
		return err
	}
	opts := cdf.WriteOptions{Codec: *codec, PerVar: map[string]string{}}
	if *per != "" {
		for _, kv := range strings.Split(*per, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -per entry %q", kv)
			}
			opts.PerVar[parts[0]] = parts[1]
		}
	}
	if err := f.WriteFile(*out, opts); err != nil {
		return err
	}
	a, _ := os.Stat(*in)
	b, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%d bytes; input %d bytes; file ratio %.3f)\n",
		*out, b.Size(), a.Size(), float64(b.Size())/float64(a.Size()))
	return nil
}

// runInspect lists variables and their achieved compression ratios.
func runInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect requires exactly one path")
	}
	f, err := cdf.Open(args[0])
	if err != nil {
		return err
	}
	for _, a := range f.Attrs {
		fmt.Printf(":%s = %s\n", a.Name, a.Value)
	}
	for _, d := range f.Dims {
		fmt.Printf("dim %s = %d\n", d.Name, d.Len)
	}
	t := &report.Table{Headers: []string{"Variable", "type", "codec", "points", "bytes", "CR", "fill"}}
	for i := range f.Vars {
		v := &f.Vars[i]
		n := v.Len(f)
		size, _ := f.PayloadSize(v.Name)
		fill := ""
		if v.HasFill {
			fill = fmt.Sprintf("%g", v.Fill)
		}
		elemBytes, typeName := 4, "f32"
		if v.Type == cdf.Float64 {
			elemBytes, typeName = 8, "f64"
		}
		cr := float64(size) / float64(elemBytes*n)
		t.AddRow(v.Name, typeName, v.Codec, fmt.Sprint(n), fmt.Sprint(size),
			report.Fix(cr, 3), fill)
	}
	fmt.Print(t.String())
	return nil
}

// runVerify compares two datasets with the §4.2 measures.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	origPath := fs.String("orig", "", "original dataset")
	reconPath := fs.String("recon", "", "reconstructed dataset")
	fs.Parse(args)
	if *origPath == "" || *reconPath == "" {
		return fmt.Errorf("verify requires -orig and -recon")
	}
	a, err := cdf.Open(*origPath)
	if err != nil {
		return err
	}
	b, err := cdf.Open(*reconPath)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Verification of %s against %s", *reconPath, *origPath),
		Headers: []string{"Variable", "e_max", "e_nmax", "RMSE", "NRMSE", "rho", "pass(rho)"},
	}
	failures := 0
	for _, name := range a.VarNames() {
		origData, err := a.ReadVar(name)
		if err != nil {
			return err
		}
		reconData, err := b.ReadVar(name)
		if err != nil {
			return fmt.Errorf("variable %s missing from %s: %w", name, *reconPath, err)
		}
		v, _ := a.Var(name)
		e := metrics.Compare(origData, reconData, v.Fill, v.HasFill)
		pass := "yes"
		if !e.PassesCorrelation() {
			pass = "NO"
			failures++
		}
		t.AddRow(name, report.Sci(e.EMax), report.Sci(e.ENMax),
			report.Sci(e.RMSE), report.Sci(e.NRMSE), report.Fix(e.Pearson, 7), pass)
	}
	fmt.Print(t.String())
	if failures > 0 {
		return fmt.Errorf("%d variables fail the correlation threshold", failures)
	}
	return nil
}
